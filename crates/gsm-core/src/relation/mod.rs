//! Binding tables (materialized views) and join machinery.
//!
//! Every materialized view of the paper — the per-edge views `matV[e]`, the
//! per-trie-node views `matV[n]`, and the per-path views of the baselines —
//! is a [`Relation`]: a duplicate-free table of vertex symbols with a fixed
//! arity. Within one **generation** relations only ever grow, which the
//! join-build cache of the `+` engine variants exploits; retractions
//! ([`Relation::retract_rows`]) compact the storage eagerly and open a new
//! generation, so every cached artefact can detect staleness by comparing
//! generation counters.

pub mod cache;
pub mod eval;
pub mod fasthash;
pub mod join;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::interner::Sym;
use crate::memory::HeapSize;

use fasthash::{hash_syms, Bucket, FxHashMap};

static NEXT_RELATION_ID: AtomicU64 = AtomicU64::new(1);

/// Rows per storage chunk (a power of two, so row addressing is a shift and
/// a mask). A chunk that fills up is **frozen** — wrapped in an `Arc` and
/// never touched again — which is what makes [`Relation::snapshot_owned`]
/// cheap: a snapshot shares the frozen chunks by reference count and copies
/// at most one partial chunk.
pub const CHUNK_ROWS: usize = 1024;

/// Converts a row count into a `u32` dedup-index slot, panicking with a
/// descriptive message instead of silently wrapping past 2³² rows (which
/// would corrupt the index: a wrapped slot aliases an earlier row, so
/// duplicate checks compare against the wrong tuple).
#[inline]
pub(crate) fn checked_row_index(len: usize) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| {
        panic!("relation row index {len} exceeds the u32 capacity of the dedup index")
    })
}

/// A duplicate-free table of `Sym` tuples with fixed arity.
///
/// Relations come in two flavours. The default ([`Relation::new`]) maintains
/// a row-hash index so [`push`](Relation::push) can reject duplicates in
/// O(1). The *distinct* flavour ([`Relation::new_distinct`]) skips the index
/// entirely for tables whose rows are distinct **by construction** — the
/// delta relations of the incremental join pipeline, where every output row
/// extends a distinct input row with a distinct matching tuple. Those tables
/// are built once, read many times and discarded, so the per-row index
/// insert (a random-access hash-map touch) is pure overhead on the hot path.
///
/// # Chunked append-only storage
///
/// Rows live in fixed-size segments of [`CHUNK_ROWS`] rows: a list of
/// **frozen** chunks (full, immutable forever, shared by `Arc`) followed by
/// one growing **tail** chunk. Together with the insert-only discipline this
/// is what makes the versioning contract ([`Relation::version`]) *shareable
/// across threads*: any prefix below a watermark is physically immutable, so
/// [`snapshot_owned`](Relation::snapshot_owned) can hand out a `Send + Sync`
/// read view that shares the frozen chunks lock-free while the writer keeps
/// appending to the tail.
#[derive(Debug, Clone)]
pub struct Relation {
    id: u64,
    arity: usize,
    /// Full, immutable storage chunks of exactly `CHUNK_ROWS * arity` syms
    /// each. Shared (never copied) by clones and owned snapshots.
    frozen: Vec<Arc<[Sym]>>,
    /// The growing tail chunk: row-major, `< CHUNK_ROWS` rows.
    tail: Vec<Sym>,
    /// Row-hash → indices of rows with that hash (collision chains verified
    /// on insert), used to keep the table duplicate-free. Keyed by the fast
    /// [`hash_syms`] row hash; chains stay inline until they spill. Unused
    /// (and empty) for distinct-by-construction relations.
    index: FxHashMap<u64, Bucket>,
    /// False for distinct-by-construction relations (no dedup index).
    indexed: bool,
    /// Compaction generation. Bumped by [`Relation::retract_rows`]; within
    /// one generation the table is append-only and the row-count versioning
    /// contract holds. Carried by clones and owned snapshots so stale join
    /// builds and frozen caches can be detected and rebuilt.
    generation: u64,
}

impl Relation {
    /// Creates an empty relation of the given arity (must be ≥ 1).
    pub fn new(arity: usize) -> Self {
        assert!(arity >= 1, "relations must have at least one column");
        Relation {
            id: NEXT_RELATION_ID.fetch_add(1, Ordering::Relaxed),
            arity,
            frozen: Vec::new(),
            tail: Vec::new(),
            index: FxHashMap::default(),
            indexed: true,
            generation: 0,
        }
    }

    /// Creates an empty relation whose rows the caller guarantees to be
    /// distinct, so no dedup index is maintained. Fill it with
    /// [`append_distinct`](Relation::append_distinct); calling
    /// [`push`](Relation::push) on it panics, so accidental mixing of the
    /// two disciplines fails loudly instead of silently corrupting the
    /// duplicate-free invariant.
    pub fn new_distinct(arity: usize) -> Self {
        Relation {
            indexed: false,
            ..Relation::new(arity)
        }
    }

    /// True if this relation maintains a dedup index ([`Relation::new`]);
    /// false for distinct-by-construction tables
    /// ([`Relation::new_distinct`]).
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Creates an empty indexed relation that starts in the given
    /// compaction `generation` instead of generation 0 — the constructor of
    /// the persistence layer's recovery path, which rebuilds a checkpointed
    /// relation row by row and must restore its generation watermark so
    /// that `(generation, version)` pairs recorded in the checkpoint
    /// manifest stay comparable after recovery. The restored relation gets
    /// a fresh [`id`](Relation::id) (identities are process-local and never
    /// persisted; every cache keyed on them starts cold after recovery).
    pub fn restore(arity: usize, generation: u64) -> Self {
        Relation {
            generation,
            ..Relation::new(arity)
        }
    }

    /// Creates a relation containing a single row.
    pub fn singleton(row: &[Sym]) -> Self {
        let mut rel = Relation::new(row.len());
        rel.push(row);
        rel
    }

    /// A never-reused identity for this relation instance, used as a cache
    /// key by [`cache::JoinCache`]. Clones **share** the identity (`Clone`
    /// is derived), so a cached build may be probed against a clone of its
    /// relation — possibly shorter, which is why probes bound-check row
    /// indices. Only push to one relation per identity when caching is in
    /// play.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.frozen.len() * CHUNK_ROWS + self.tail.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.frozen.is_empty() && self.tail.is_empty()
    }

    /// Monotonically increasing version: the current number of rows.
    ///
    /// # Versioning contract
    ///
    /// Within one [`generation`](Relation::generation) relations are
    /// **append-only** — rows are appended, never removed or reordered — so
    /// a version is simply a row-count watermark and uniquely identifies a
    /// prefix of the table for as long as the generation lasts. Capturing
    /// `version()` is O(1); a later [`snapshot_at`] of that watermark
    /// exposes exactly the rows that existed at capture time, no matter how
    /// many rows a writer has appended since, and [`delta_since`] yields
    /// exactly the rows appended after it. This is what lets the pipelined
    /// executor answer batch *N* against frozen views while batch *N + 1*
    /// is already being routed and propagated.
    ///
    /// [`retract_rows`](Relation::retract_rows) compacts the table and
    /// opens a new generation, invalidating old watermarks; consumers that
    /// hold a watermark across a possible retraction must also capture the
    /// generation and re-derive their state when it changed. Owned
    /// snapshots ([`snapshot_owned`](Relation::snapshot_owned)) are immune:
    /// they share the *old* generation's chunks by `Arc`, which stay alive
    /// until the last snapshot drops — reclamation is exactly the release
    /// of those reference counts.
    ///
    /// [`snapshot_at`]: Relation::snapshot_at
    /// [`delta_since`]: Relation::delta_since
    pub fn version(&self) -> usize {
        self.len()
    }

    /// The compaction generation this relation is in. `0` until the first
    /// [`retract_rows`](Relation::retract_rows); bumped by each compaction.
    /// A (generation, version) pair uniquely identifies a physical row
    /// prefix, which is what the join-build caches key their staleness
    /// checks on.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of full, frozen storage chunks currently referenced by this
    /// relation. Compaction drops retracted rows, so under a sliding-window
    /// stream this stays proportional to the *live* row count rather than
    /// growing with the total insert count — the boundedness the
    /// reclamation tests assert.
    pub fn frozen_chunks(&self) -> usize {
        self.frozen.len()
    }

    /// A read-only view of the first `version` rows — the state of the
    /// relation when [`version`](Relation::version) returned that watermark.
    /// Versions larger than the current length are clamped (the snapshot can
    /// never show rows that do not exist yet).
    pub fn snapshot_at(&self, version: usize) -> RelationSnapshot<'_> {
        RelationSnapshot {
            rel: self,
            len: version.min(self.len()),
        }
    }

    /// Iterates over the rows appended strictly after the `version`
    /// watermark — the delta between that snapshot and the current state.
    pub fn delta_since(&self, version: usize) -> impl Iterator<Item = &[Sym]> {
        self.iter_from(version)
    }

    /// An owned, `Send + Sync` read view of the first `version` rows,
    /// packaged as an index-free [`Relation`] so every join kernel of the
    /// workspace accepts it unchanged. Versions past the current length are
    /// clamped, like [`snapshot_at`](Relation::snapshot_at).
    ///
    /// Frozen chunks wholly below the watermark are **shared** (`Arc`
    /// clones, no row is copied); only the partial chunk the watermark cuts
    /// through — at most [`CHUNK_ROWS`] rows — is copied. The result is
    /// bitwise stable forever: later appends to this relation land past the
    /// watermark, in chunks the snapshot either fully owns a frozen copy of
    /// or never references. This is the substrate of cross-thread deferred
    /// answering: the stage phase freezes snapshots into its token, and the
    /// answer phase joins against them on another thread while the writer
    /// keeps appending.
    ///
    /// Like [`Clone`], the snapshot **shares the source's identity**: it is
    /// the same logical relation at an earlier watermark, so build caches
    /// keyed by [`id`](Relation::id) recognise it. This is sound because a
    /// build indexing *more* rows than a snapshot holds is still correct to
    /// probe — probe hits are bounds-checked against the probe-side length —
    /// and [`FrozenJoinCache::get`](crate::relation::cache::FrozenJoinCache::get)
    /// rejects the unsafe under-indexed direction.
    pub fn snapshot_owned(&self, version: usize) -> Relation {
        let len = version.min(self.len());
        let full = len / CHUNK_ROWS;
        let rem = len % CHUNK_ROWS;
        let frozen: Vec<Arc<[Sym]>> = self.frozen[..full.min(self.frozen.len())].to_vec();
        let tail = if rem > 0 {
            let src: &[Sym] = if full < self.frozen.len() {
                &self.frozen[full]
            } else {
                &self.tail
            };
            src[..rem * self.arity].to_vec()
        } else {
            Vec::new()
        };
        Relation {
            id: self.id,
            arity: self.arity,
            frozen,
            tail,
            index: FxHashMap::default(),
            indexed: false,
            generation: self.generation,
        }
    }

    /// Returns row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Sym] {
        let chunk = i / CHUNK_ROWS;
        if chunk < self.frozen.len() {
            let start = (i % CHUNK_ROWS) * self.arity;
            &self.frozen[chunk][start..start + self.arity]
        } else {
            let start = (i - self.frozen.len() * CHUNK_ROWS) * self.arity;
            &self.tail[start..start + self.arity]
        }
    }

    /// The storage chunks in row order: every frozen chunk, then the tail.
    #[inline]
    fn chunk_slices(&self) -> impl Iterator<Item = &[Sym]> {
        self.frozen
            .iter()
            .map(|c| c.as_ref())
            .chain(std::iter::once(self.tail.as_slice()))
    }

    /// The raw storage chunks in row order — every frozen chunk (exactly
    /// [`CHUNK_ROWS`] rows each) followed by the partial tail chunk (may be
    /// empty). This is the chunk-spill surface of the persistence layer:
    /// a checkpoint serializes each chunk as one record, so frozen chunks
    /// round-trip as the immutable units they already are in memory.
    pub fn storage_chunks(&self) -> impl Iterator<Item = &[Sym]> {
        self.chunk_slices()
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[Sym]> {
        let arity = self.arity.max(1);
        self.chunk_slices().flat_map(move |s| s.chunks_exact(arity))
    }

    /// Iterates over the rows added at or after version `from`.
    pub fn iter_from(&self, from: usize) -> impl Iterator<Item = &[Sym]> {
        let arity = self.arity.max(1);
        let from = from.min(self.len());
        let start_chunk = from / CHUNK_ROWS;
        let offset = (from % CHUNK_ROWS) * arity;
        self.frozen[start_chunk.min(self.frozen.len())..]
            .iter()
            .map(|c| c.as_ref())
            .chain(std::iter::once(self.tail.as_slice()))
            .enumerate()
            .flat_map(move |(k, s)| {
                let skip = if k == 0 { offset.min(s.len()) } else { 0 };
                s[skip..].chunks_exact(arity)
            })
    }

    /// Appends one row of raw storage, freezing the tail chunk when it
    /// fills. The caller maintains the dedup discipline.
    #[inline]
    fn append_row(&mut self, row: &[Sym]) {
        self.tail.extend_from_slice(row);
        if self.tail.len() == CHUNK_ROWS * self.arity {
            let full =
                std::mem::replace(&mut self.tail, Vec::with_capacity(CHUNK_ROWS * self.arity));
            self.frozen.push(full.into());
        }
    }

    /// True if an identical row is already present. O(1) via the index for
    /// ordinary relations; a linear scan for distinct-by-construction ones
    /// (only used in assertions and tests there).
    pub fn contains(&self, row: &[Sym]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if self.indexed {
            self.contains_hashed(hash_syms(row), row)
        } else {
            self.iter().any(|r| r == row)
        }
    }

    /// [`contains`](Self::contains) with an externally supplied row hash —
    /// the testable core that lets unit tests force bucket collisions.
    fn contains_hashed(&self, h: u64, row: &[Sym]) -> bool {
        self.index
            .get(&h)
            .map(|bucket| {
                bucket
                    .as_slice()
                    .iter()
                    .any(|&i| self.row(i as usize) == row)
            })
            .unwrap_or(false)
    }

    /// Inserts a row, returning `true` if it was new. Panics on a
    /// distinct-by-construction relation — use
    /// [`append_distinct`](Relation::append_distinct) there.
    pub fn push(&mut self, row: &[Sym]) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "row arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        assert!(
            self.indexed,
            "push on a distinct-by-construction relation; use append_distinct"
        );
        self.push_hashed(hash_syms(row), row)
    }

    /// Appends a row the caller guarantees is not already present, without
    /// touching the dedup index. This is the write path of
    /// [`Relation::new_distinct`] tables; debug builds verify the guarantee
    /// by a scan.
    #[inline]
    pub fn append_distinct(&mut self, row: &[Sym]) {
        debug_assert_eq!(row.len(), self.arity);
        // The duplicate check is a linear scan (distinct relations carry no
        // index); cap it to small relations so debug-build test suites
        // replaying whole streams as one batch stay linear in the delta
        // size. Small relations — everything the edge-case tests and
        // proptests build — are still verified in full.
        debug_assert!(
            self.len() > 64 || !self.contains(row),
            "append_distinct received a duplicate row"
        );
        if self.indexed {
            // Indexed relations must keep their index complete for future
            // dedup pushes, so the guarantee only saves the chain comparison.
            self.push_hashed(hash_syms(row), row);
        } else {
            self.append_row(row);
        }
    }

    /// Removes every row of `removed` that is present in `self`, compacting
    /// the storage in place, and returns how many rows were dropped.
    ///
    /// The surviving rows keep their relative order. Frozen chunks entirely
    /// before the first removed row are reused untouched (`Arc` clones);
    /// everything from the first removal onward is rewritten into fresh
    /// chunks and the dedup index (if any) is rebuilt. The relation keeps
    /// its [`id`](Relation::id) but opens a new
    /// [`generation`](Relation::generation), so stale join builds and
    /// frozen caches keyed on the id detect the rewrite and rebuild.
    ///
    /// Old-generation chunks are **not** freed here if an outstanding
    /// [`snapshot_owned`](Relation::snapshot_owned) still shares them; they
    /// are reclaimed when the last such snapshot drops — the `Arc`
    /// reference counts are the epoch scheme.
    pub fn retract_rows(&mut self, removed: &Relation) -> usize {
        assert_eq!(
            self.arity, removed.arity,
            "retract_rows arity mismatch: {} vs {}",
            self.arity, removed.arity
        );
        if removed.is_empty() || self.is_empty() {
            return 0;
        }
        // Probe index over the rows to remove: row hash → indices into
        // `removed`, chains verified by full row comparison.
        let mut probe: FxHashMap<u64, Bucket> = FxHashMap::default();
        for (i, row) in removed.iter().enumerate() {
            probe
                .entry(hash_syms(row))
                .or_default()
                .push(checked_row_index(i));
        }
        let is_removed = |row: &[Sym]| -> bool {
            probe
                .get(&hash_syms(row))
                .map(|b| b.as_slice().iter().any(|&i| removed.row(i as usize) == row))
                .unwrap_or(false)
        };
        // Locate the first removed row; chunks wholly before it survive.
        let Some(first) = self.iter().position(is_removed) else {
            return 0;
        };
        let keep_chunks = (first / CHUNK_ROWS).min(self.frozen.len());
        let mut new_frozen: Vec<Arc<[Sym]>> = self.frozen[..keep_chunks].to_vec();
        let mut new_tail: Vec<Sym> = Vec::with_capacity(CHUNK_ROWS * self.arity);
        let mut dropped = 0;
        for row in self.iter_from(keep_chunks * CHUNK_ROWS) {
            if is_removed(row) {
                dropped += 1;
                continue;
            }
            new_tail.extend_from_slice(row);
            if new_tail.len() == CHUNK_ROWS * self.arity {
                let full =
                    std::mem::replace(&mut new_tail, Vec::with_capacity(CHUNK_ROWS * self.arity));
                new_frozen.push(full.into());
            }
        }
        self.frozen = new_frozen;
        self.tail = new_tail;
        self.generation += 1;
        if self.indexed {
            let mut index: FxHashMap<u64, Bucket> = FxHashMap::default();
            for (i, row) in self.iter().enumerate() {
                index
                    .entry(hash_syms(row))
                    .or_default()
                    .push(checked_row_index(i));
            }
            self.index = index;
        }
        dropped
    }

    /// [`push`](Self::push) with an externally supplied row hash — the
    /// testable core that lets unit tests force bucket collisions. Collision
    /// chains are always verified by full row comparison, so correctness
    /// never depends on hash quality.
    fn push_hashed(&mut self, h: u64, row: &[Sym]) -> bool {
        let new_index = checked_row_index(self.len());
        {
            let arity = self.arity;
            let frozen = &self.frozen;
            let tail = &self.tail;
            let row_at = |i: usize| -> &[Sym] {
                let chunk = i / CHUNK_ROWS;
                if chunk < frozen.len() {
                    let start = (i % CHUNK_ROWS) * arity;
                    &frozen[chunk][start..start + arity]
                } else {
                    let start = (i - frozen.len() * CHUNK_ROWS) * arity;
                    &tail[start..start + arity]
                }
            };
            let bucket = self.index.entry(h).or_default();
            if bucket.as_slice().iter().any(|&i| row_at(i as usize) == row) {
                return false;
            }
            bucket.push(new_index);
        }
        self.append_row(row);
        true
    }

    /// Unions `other` into `self` (arity must match); returns the number of
    /// rows actually added. On an ordinary relation duplicates are dropped;
    /// on a distinct-by-construction relation the caller guarantees the two
    /// row sets are disjoint (debug builds verify it) and every row is
    /// appended.
    pub fn extend_from(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity);
        if !self.indexed {
            for row in other.iter() {
                self.append_distinct(row);
            }
            return other.len();
        }
        let mut added = 0;
        for row in other.iter() {
            if self.push(row) {
                added += 1;
            }
        }
        added
    }

    /// Projects onto the given columns (in the given order), de-duplicating.
    pub fn project(&self, cols: &[usize]) -> Relation {
        assert!(!cols.is_empty());
        let mut out = Relation::new(cols.len());
        let mut buf = vec![Sym(0); cols.len()];
        for row in self.iter() {
            for (o, &c) in buf.iter_mut().zip(cols) {
                *o = row[c];
            }
            out.push(&buf);
        }
        out
    }

    /// Keeps only the rows where, within each group of columns, all values
    /// are equal. Used to enforce repeated query vertices inside a path.
    pub fn filter_equal_groups(&self, groups: &[Vec<usize>]) -> Relation {
        self.filter_equal_groups_prefix(groups, self.len())
    }

    /// [`filter_equal_groups`](Relation::filter_equal_groups) bounded by a
    /// version watermark: only the first `limit` rows are considered. This
    /// is the selection kernel behind version-bounded path bindings
    /// ([`crate::relation::eval::PathBinding::at_version`]).
    pub fn filter_equal_groups_prefix(&self, groups: &[Vec<usize>], limit: usize) -> Relation {
        let mut out = Relation::new(self.arity);
        'rows: for row in self.iter().take(limit) {
            for group in groups {
                if group.len() > 1 {
                    let first = row[group[0]];
                    if group[1..].iter().any(|&c| row[c] != first) {
                        continue 'rows;
                    }
                }
            }
            out.push(row);
        }
        out
    }

    /// Keeps only the rows where column `col` equals `value`.
    pub fn filter_col_eq(&self, col: usize, value: Sym) -> Relation {
        let mut out = Relation::new(self.arity);
        for row in self.iter() {
            if row[col] == value {
                out.push(row);
            }
        }
        out
    }

    /// Collects all rows into owned vectors — convenient in tests.
    pub fn to_vec(&self) -> Vec<Vec<Sym>> {
        self.iter().map(|r| r.to_vec()).collect()
    }

    /// Collects all rows into a sorted vector — convenient for comparisons.
    pub fn to_sorted_vec(&self) -> Vec<Vec<Sym>> {
        let mut v = self.to_vec();
        v.sort();
        v
    }
}

impl HeapSize for Relation {
    fn heap_size(&self) -> usize {
        // Shared frozen chunks are charged to every holder: heap accounting
        // here answers "how much data does this relation give access to",
        // which is what the memory experiments compare across engines.
        self.frozen
            .iter()
            .map(|c| std::mem::size_of_val::<[Sym]>(c))
            .sum::<usize>()
            + self.frozen.capacity() * std::mem::size_of::<Arc<[Sym]>>()
            + self.tail.heap_size()
            + self.index.heap_size()
    }
}

/// A read-only view of an insert-only [`Relation`] frozen at a version
/// watermark (see [`Relation::snapshot_at`]).
///
/// The snapshot borrows the relation and exposes exactly the rows that
/// existed when the watermark was captured: `len()`, `row(i)` and `iter()`
/// are all bounded by the watermark, so a reader holding a snapshot at
/// version `v` can never observe rows appended after `v` — the
/// snapshot-isolation guarantee the pipelined executor's deferred answering
/// phase relies on.
#[derive(Debug, Clone, Copy)]
pub struct RelationSnapshot<'a> {
    rel: &'a Relation,
    len: usize,
}

impl<'a> RelationSnapshot<'a> {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.rel.arity()
    }

    /// Number of rows visible in this snapshot (the watermark).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the snapshot contains no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The version this snapshot is frozen at (same as [`len`](Self::len)).
    pub fn version(&self) -> usize {
        self.len
    }

    /// Returns row `i`; panics if `i` is at or past the watermark.
    pub fn row(&self, i: usize) -> &'a [Sym] {
        assert!(i < self.len, "row {i} is past the snapshot watermark");
        self.rel.row(i)
    }

    /// Iterates over the snapshot's rows.
    pub fn iter(&self) -> impl Iterator<Item = &'a [Sym]> {
        self.rel.iter().take(self.len)
    }

    /// True if an identical row is visible in this snapshot. Always a scan
    /// bounded by the watermark (the relation's dedup index cannot be used:
    /// it also covers rows appended after the snapshot).
    pub fn contains(&self, row: &[Sym]) -> bool {
        self.iter().any(|r| r == row)
    }

    /// Collects the visible rows into owned vectors — convenient in tests.
    pub fn to_vec(&self) -> Vec<Vec<Sym>> {
        self.iter().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    #[test]
    fn push_dedups() {
        let mut r = Relation::new(2);
        assert!(r.push(&[s(1), s(2)]));
        assert!(!r.push(&[s(1), s(2)]));
        assert!(r.push(&[s(2), s(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[s(1), s(2)]));
        assert!(!r.contains(&[s(9), s(9)]));
    }

    #[test]
    fn iter_from_yields_suffix() {
        let mut r = Relation::new(1);
        for i in 0..10 {
            r.push(&[s(i)]);
        }
        let suffix: Vec<_> = r.iter_from(7).map(|row| row[0].0).collect();
        assert_eq!(suffix, vec![7, 8, 9]);
        assert_eq!(r.iter_from(20).count(), 0);
    }

    #[test]
    fn ids_are_unique_even_for_clones() {
        let a = Relation::new(2);
        let b = a.clone();
        let c = Relation::new(2);
        assert_ne!(a.id(), c.id());
        // Clones share the id (same logical content) — documented behaviour
        // relied on only through explicit cloning in tests.
        assert_eq!(a.id(), b.id());
        // Version snapshots are clones at an earlier watermark and share
        // the id too, so published build caches recognise them.
        assert_eq!(a.id(), a.snapshot_owned(0).id());
    }

    #[test]
    fn project_dedups() {
        let mut r = Relation::new(3);
        r.push(&[s(1), s(2), s(3)]);
        r.push(&[s(1), s(5), s(3)]);
        let p = r.project(&[0, 2]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.arity(), 2);
        let reordered = r.project(&[2, 0]);
        assert_eq!(reordered.row(0), &[s(3), s(1)]);
    }

    #[test]
    fn filter_equal_groups_enforces_repeats() {
        let mut r = Relation::new(3);
        r.push(&[s(1), s(2), s(1)]);
        r.push(&[s(1), s(2), s(3)]);
        let f = r.filter_equal_groups(&[vec![0, 2]]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.row(0), &[s(1), s(2), s(1)]);
    }

    #[test]
    fn filter_col_eq() {
        let mut r = Relation::new(2);
        r.push(&[s(1), s(2)]);
        r.push(&[s(3), s(2)]);
        r.push(&[s(1), s(4)]);
        assert_eq!(r.filter_col_eq(0, s(1)).len(), 2);
        assert_eq!(r.filter_col_eq(1, s(2)).len(), 2);
        assert_eq!(r.filter_col_eq(1, s(9)).len(), 0);
    }

    #[test]
    fn extend_from_unions() {
        let mut a = Relation::new(2);
        a.push(&[s(1), s(1)]);
        let mut b = Relation::new(2);
        b.push(&[s(1), s(1)]);
        b.push(&[s(2), s(2)]);
        let added = a.extend_from(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.push(&[s(1)]);
    }

    #[test]
    fn distinct_relations_append_without_index() {
        let mut r = Relation::new_distinct(2);
        assert!(!r.is_indexed());
        r.append_distinct(&[s(1), s(2)]);
        r.append_distinct(&[s(2), s(1)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[s(1), s(2)]), "scan-based contains");
        assert!(!r.contains(&[s(9), s(9)]));
        // Reads behave identically to indexed relations.
        assert_eq!(r.to_sorted_vec().len(), 2);
        assert_eq!(r.project(&[1]).len(), 2);
        let clone = r.clone();
        assert!(!clone.is_indexed());
    }

    #[test]
    #[should_panic(expected = "distinct-by-construction")]
    fn dedup_push_on_distinct_relation_panics() {
        let mut r = Relation::new_distinct(1);
        r.push(&[s(1)]);
    }

    #[test]
    fn extend_from_appends_into_distinct_relations() {
        let mut a = Relation::new_distinct(1);
        a.append_distinct(&[s(1)]);
        let mut b = Relation::new(1);
        b.push(&[s(2)]);
        b.push(&[s(3)]);
        assert_eq!(a.extend_from(&b), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn append_distinct_on_indexed_relation_keeps_index_complete() {
        let mut r = Relation::new(2);
        r.append_distinct(&[s(1), s(2)]);
        // A later dedup push must still see the appended row.
        assert!(!r.push(&[s(1), s(2)]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn forced_hash_collisions_keep_dedup_correct() {
        // Drive the hashed core directly with one constant hash so every row
        // lands in the same bucket chain: push/contains must still
        // distinguish rows by full comparison, and duplicates must still be
        // rejected — correctness cannot lean on hash quality.
        const H: u64 = 0xDEAD_BEEF;
        let mut r = Relation::new(2);
        assert!(r.push_hashed(H, &[s(1), s(2)]));
        assert!(r.push_hashed(H, &[s(3), s(4)]));
        assert!(r.push_hashed(H, &[s(5), s(6)]));
        // A fourth distinct row spills the inline chain and must still work.
        assert!(r.push_hashed(H, &[s(7), s(8)]));
        assert_eq!(r.len(), 4);

        // Duplicates of every colliding row are rejected.
        assert!(!r.push_hashed(H, &[s(1), s(2)]));
        assert!(!r.push_hashed(H, &[s(7), s(8)]));
        assert_eq!(r.len(), 4);

        // Lookups verify the chain row by row.
        assert!(r.contains_hashed(H, &[s(3), s(4)]));
        assert!(r.contains_hashed(H, &[s(5), s(6)]));
        assert!(!r.contains_hashed(H, &[s(2), s(1)]), "colliding ≠ equal");
        assert!(!r.contains_hashed(0, &[s(1), s(2)]), "wrong hash, no hit");

        // Row storage is untouched by the collisions.
        assert_eq!(r.row(0), &[s(1), s(2)]);
        assert_eq!(r.row(3), &[s(7), s(8)]);
    }

    #[test]
    fn snapshot_at_version_never_observes_later_appends() {
        // The snapshot-isolation contract of the versioning scheme: a reader
        // at version v sees exactly the first v rows, however many rows a
        // writer appends after the watermark was captured.
        let mut r = Relation::new(2);
        r.push(&[s(1), s(2)]);
        r.push(&[s(3), s(4)]);
        let v = r.version();
        assert_eq!(v, 2);

        // Writer appends behind the watermark.
        r.push(&[s(5), s(6)]);
        r.push(&[s(7), s(8)]);

        let snap = r.snapshot_at(v);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.version(), v);
        assert_eq!(snap.to_vec(), vec![vec![s(1), s(2)], vec![s(3), s(4)]]);
        assert!(snap.contains(&[s(1), s(2)]));
        assert!(
            !snap.contains(&[s(5), s(6)]),
            "row appended after v is visible at v"
        );
        assert_eq!(snap.iter().count(), 2);
        assert_eq!(snap.row(1), &[s(3), s(4)]);

        // The delta is exactly the suffix past the watermark.
        let delta: Vec<Vec<Sym>> = r.delta_since(v).map(|row| row.to_vec()).collect();
        assert_eq!(delta, vec![vec![s(5), s(6)], vec![s(7), s(8)]]);

        // Snapshot of the current version sees everything; over-long
        // watermarks clamp.
        assert_eq!(r.snapshot_at(r.version()).len(), 4);
        assert_eq!(r.snapshot_at(100).len(), 4);
        assert!(r.snapshot_at(0).is_empty());
        assert_eq!(r.snapshot_at(0).arity(), 2);
    }

    #[test]
    #[should_panic(expected = "past the snapshot watermark")]
    fn snapshot_row_past_watermark_panics() {
        let mut r = Relation::new(1);
        r.push(&[s(1)]);
        r.push(&[s(2)]);
        let snap = r.snapshot_at(1);
        let _ = snap.row(1);
    }

    #[test]
    fn large_relation_remains_duplicate_free() {
        let mut r = Relation::new(2);
        for i in 0..5_000u32 {
            r.push(&[s(i % 100), s(i % 37)]);
        }
        // 100 * 37 = 3700 possible distinct pairs but only pairs with
        // i%100==a && i%37==b for some i < 5000 exist; just check dedup holds.
        let distinct: std::collections::HashSet<Vec<Sym>> =
            r.iter().map(|row| row.to_vec()).collect();
        assert_eq!(distinct.len(), r.len());
    }

    /// A relation of `n` distinct single-column rows `0..n`.
    fn counted(n: usize) -> Relation {
        let mut r = Relation::new(1);
        for i in 0..n {
            r.push(&[s(i as u32)]);
        }
        r
    }

    #[test]
    fn chunk_boundaries_preserve_row_addressing() {
        // One row before, exactly at, and one row past a chunk edge — and a
        // multi-chunk table — must all read back exactly, through row(),
        // iter(), iter_from() and contains().
        for n in [
            CHUNK_ROWS - 1,
            CHUNK_ROWS,
            CHUNK_ROWS + 1,
            2 * CHUNK_ROWS + 3,
        ] {
            let r = counted(n);
            assert_eq!(r.len(), n, "len at {n}");
            for i in [0, n / 2, n - 1] {
                assert_eq!(r.row(i), &[s(i as u32)], "row {i} of {n}");
            }
            let all: Vec<u32> = r.iter().map(|row| row[0].0).collect();
            assert_eq!(all, (0..n as u32).collect::<Vec<_>>(), "iter at {n}");
            for from in [0, 1, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, n] {
                let suffix: Vec<u32> = r.iter_from(from).map(|row| row[0].0).collect();
                assert_eq!(
                    suffix,
                    (from as u32..n as u32).collect::<Vec<_>>(),
                    "iter_from({from}) at {n}"
                );
            }
            assert!(r.contains(&[s(0)]) && r.contains(&[s(n as u32 - 1)]));
            assert!(!r.contains(&[s(n as u32)]));
        }
    }

    #[test]
    #[should_panic]
    fn row_past_the_end_panics_even_in_a_later_chunk_slot() {
        // Index CHUNK_ROWS of a table that has no frozen chunk must panic,
        // not alias row 0 of the tail.
        let r = counted(2);
        let _ = r.row(CHUNK_ROWS);
    }

    #[test]
    fn dedup_survives_chunk_freezes() {
        let mut r = counted(CHUNK_ROWS + 10);
        // Duplicates of rows in frozen chunks and in the tail are rejected.
        assert!(!r.push(&[s(0)]));
        assert!(!r.push(&[s((CHUNK_ROWS - 1) as u32)]));
        assert!(!r.push(&[s((CHUNK_ROWS + 5) as u32)]));
        assert_eq!(r.len(), CHUNK_ROWS + 10);
    }

    #[test]
    fn snapshot_owned_is_stable_under_later_appends() {
        // Watermarks below, at and above the chunk edge; the snapshot must
        // expose exactly the prefix and stay bitwise identical while the
        // writer grows the relation past further chunk boundaries.
        let mut r = counted(CHUNK_ROWS + 5);
        for v in [
            0,
            1,
            CHUNK_ROWS - 1,
            CHUNK_ROWS,
            CHUNK_ROWS + 1,
            CHUNK_ROWS + 5,
        ] {
            let snap = r.snapshot_owned(v);
            assert_eq!(snap.len(), v);
            assert_eq!(snap.arity(), 1);
            assert!(!snap.is_indexed(), "snapshots carry no dedup index");
            let before: Vec<u32> = snap.iter().map(|row| row[0].0).collect();
            assert_eq!(before, (0..v as u32).collect::<Vec<_>>());

            // Writer appends past another chunk edge behind the snapshot.
            let grown = r.len();
            for i in 0..CHUNK_ROWS {
                r.push(&[s((10_000 + grown + i) as u32)]);
            }
            let after: Vec<u32> = snap.iter().map(|row| row[0].0).collect();
            assert_eq!(after, before, "snapshot at {v} moved under the writer");
        }
        // Clamping matches snapshot_at.
        assert_eq!(r.snapshot_owned(usize::MAX).len(), r.len());
    }

    #[test]
    fn checked_row_index_passes_and_panics() {
        assert_eq!(checked_row_index(0), 0);
        assert_eq!(checked_row_index(41), 41);
        assert_eq!(checked_row_index(u32::MAX as usize), u32::MAX);
        let overflow = std::panic::catch_unwind(|| checked_row_index(u32::MAX as usize + 1));
        let msg = *overflow
            .expect_err("row index past u32::MAX must panic, not wrap")
            .downcast::<String>()
            .expect("panic payload");
        assert!(
            msg.contains("exceeds the u32 capacity"),
            "descriptive message, got: {msg}"
        );
    }

    #[test]
    fn retract_rows_removes_and_compacts() {
        let mut r = Relation::new(2);
        r.push(&[s(1), s(2)]);
        r.push(&[s(3), s(4)]);
        r.push(&[s(5), s(6)]);
        let mut gone = Relation::new(2);
        gone.push(&[s(3), s(4)]);
        gone.push(&[s(9), s(9)]); // absent — must not count
        assert_eq!(r.generation(), 0);
        assert_eq!(r.retract_rows(&gone), 1);
        assert_eq!(r.generation(), 1);
        assert_eq!(r.to_vec(), vec![vec![s(1), s(2)], vec![s(5), s(6)]]);
        // Survivors keep order; the dedup index is rebuilt correctly.
        assert!(!r.push(&[s(1), s(2)]));
        assert!(!r.push(&[s(5), s(6)]));
        assert!(r.push(&[s(3), s(4)]), "retracted row may be re-inserted");
        // No matching rows → no-op, generation unchanged.
        let mut none = Relation::new(2);
        none.push(&[s(7), s(7)]);
        assert_eq!(r.retract_rows(&none), 0);
        assert_eq!(r.generation(), 1);
    }

    #[test]
    fn retract_rows_shares_untouched_prefix_chunks() {
        let mut r = counted(3 * CHUNK_ROWS + 5);
        let before: Vec<Arc<[Sym]>> = r.frozen.clone();
        // Remove a row in the third chunk: the first two survive untouched.
        let gone = Relation::singleton(&[s((2 * CHUNK_ROWS + 1) as u32)]);
        assert_eq!(r.retract_rows(&gone), 1);
        assert!(Arc::ptr_eq(&r.frozen[0], &before[0]), "chunk 0 shared");
        assert!(Arc::ptr_eq(&r.frozen[1], &before[1]), "chunk 1 shared");
        assert!(!Arc::ptr_eq(&r.frozen[2], &before[2]), "chunk 2 rewritten");
        assert_eq!(r.len(), 3 * CHUNK_ROWS + 4);
        let all: Vec<u32> = r.iter().map(|row| row[0].0).collect();
        let expect: Vec<u32> = (0..(3 * CHUNK_ROWS + 5) as u32)
            .filter(|&i| i != (2 * CHUNK_ROWS + 1) as u32)
            .collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn retract_rows_keeps_snapshots_alive_then_reclaims() {
        // The Arc-refcount epoch scheme: an outstanding owned snapshot pins
        // the pre-compaction chunks; dropping it releases them.
        let mut r = counted(2 * CHUNK_ROWS);
        let snap = r.snapshot_owned(r.version());
        let pinned = Arc::clone(&r.frozen[0]);
        let gone = Relation::singleton(&[s(3)]);
        assert_eq!(r.retract_rows(&gone), 1);
        // Snapshot still reads the old generation bit-for-bit.
        assert_eq!(snap.len(), 2 * CHUNK_ROWS);
        assert_eq!(snap.row(3), &[s(3)]);
        assert!(!r.contains(&[s(3)]));
        assert_eq!(Arc::strong_count(&pinned), 2, "snapshot pins old chunk");
        drop(snap);
        assert_eq!(Arc::strong_count(&pinned), 1, "reclaimed once unpinned");
    }

    #[test]
    fn retract_rows_on_distinct_relation() {
        let mut r = Relation::new_distinct(1);
        for i in 0..5 {
            r.append_distinct(&[s(i)]);
        }
        let mut gone = Relation::new(1);
        gone.push(&[s(0)]);
        gone.push(&[s(4)]);
        assert_eq!(r.retract_rows(&gone), 2);
        assert_eq!(r.to_vec(), vec![vec![s(1)], vec![s(2)], vec![s(3)]]);
        assert!(!r.is_indexed());
    }

    #[test]
    fn sliding_window_keeps_chunk_count_bounded() {
        // Sustained insert-then-retract churn: the live row count never
        // exceeds the window, so compaction must keep the frozen chunk
        // count bounded by the window size instead of the insert total.
        let window = CHUNK_ROWS / 2;
        let mut r = Relation::new(1);
        let mut generations = 0;
        for i in 0..20 * CHUNK_ROWS as u32 {
            r.push(&[s(i)]);
            if i as usize >= window && i % 512 == 0 {
                let mut expired = Relation::new(1);
                for j in (i as usize - window).saturating_sub(512)..(i as usize - window) {
                    expired.push(&[s(j as u32)]);
                }
                let g = r.generation();
                r.retract_rows(&expired);
                generations += u64::from(r.generation() > g);
            }
        }
        assert!(generations > 10, "compaction ran repeatedly");
        assert!(
            r.frozen_chunks() <= 2,
            "frozen chunks unbounded: {} for window {window}",
            r.frozen_chunks()
        );
        assert!(r.len() <= window + 1024);
    }

    #[test]
    fn snapshot_owned_is_send_sync_and_readable_cross_thread() {
        let mut r = counted(CHUNK_ROWS + 7);
        let snap = r.snapshot_owned(CHUNK_ROWS + 3);
        let handle = std::thread::spawn(move || {
            // Reads on another thread while the original keeps growing.
            assert_eq!(snap.len(), CHUNK_ROWS + 3);
            assert_eq!(snap.row(CHUNK_ROWS)[0], s(CHUNK_ROWS as u32));
            snap.iter().map(|row| row[0].0 as u64).sum::<u64>()
        });
        for i in 0..100 {
            r.push(&[s(50_000 + i)]);
        }
        let sum = handle.join().expect("reader thread");
        let n = (CHUNK_ROWS + 3) as u64;
        assert_eq!(sum, n * (n - 1) / 2);
    }

    #[test]
    fn restore_starts_in_the_given_generation() {
        let r = Relation::restore(2, 7);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.generation(), 7);
        assert!(r.is_empty());
        assert!(r.is_indexed(), "restored relations keep the dedup index");

        let mut a = Relation::restore(1, 3);
        let mut b = Relation::restore(1, 3);
        a.push(&[s(1)]);
        b.push(&[s(1)]);
        assert_ne!(a.id(), b.id(), "restored relations get fresh identities");
    }

    #[test]
    fn storage_chunks_cover_every_row_in_order() {
        let r = counted(CHUNK_ROWS + 5);
        let chunks: Vec<&[Sym]> = r.storage_chunks().collect();
        assert_eq!(chunks.len(), 2, "one frozen chunk plus the tail");
        assert_eq!(chunks[0].len(), CHUNK_ROWS * r.arity());
        assert_eq!(chunks[1].len(), 5 * r.arity());
        let flat: Vec<Sym> = chunks.concat();
        let rows: Vec<Sym> = r.iter().flatten().copied().collect();
        assert_eq!(flat, rows, "chunk order is row order");
    }
}
