//! Hash joins over [`Relation`]s.
//!
//! The paper's materialization joins are classic build/probe hash joins
//! (Section 4.2, "Caching"): the smaller side is hashed on the join key and
//! the larger side probes it. The build structure ([`JoinBuild`]) is exposed
//! so that the `+` engine variants can cache it across updates and maintain
//! it incrementally as relations grow.

use super::fasthash::{hash_projected, hash_syms, Bucket, FxHashMap};
use super::Relation;
use crate::interner::Sym;
use crate::memory::HeapSize;

/// A build-side hash table over a relation keyed by a set of columns.
#[derive(Debug, Clone)]
pub struct JoinBuild {
    key_cols: Vec<usize>,
    /// key-hash → row indices (collision chains verified at probe time).
    /// Keyed by the fast [`hash_syms`] key hash; chains stay inline until
    /// they spill.
    buckets: FxHashMap<u64, Bucket>,
    /// Number of rows of the underlying relation already indexed.
    rows_indexed: usize,
    /// Compaction generation of the relation when it was (re)indexed. A
    /// retraction compacts the relation in place and bumps its generation,
    /// invalidating every row index recorded here; incremental updates
    /// detect the mismatch and rebuild from scratch.
    generation: u64,
}

impl JoinBuild {
    /// Builds a hash table over `rel` keyed by `key_cols`.
    pub fn build(rel: &Relation, key_cols: &[usize]) -> Self {
        Self::build_prefix(rel, key_cols, rel.len())
    }

    /// Builds a hash table over the first `len` rows of `rel` keyed by
    /// `key_cols` — the build side of a join against a version snapshot of
    /// an insert-only relation (see [`Relation::snapshot_at`]): probes can
    /// only ever hit rows below the watermark.
    pub fn build_prefix(rel: &Relation, key_cols: &[usize], len: usize) -> Self {
        let mut b = JoinBuild {
            key_cols: key_cols.to_vec(),
            buckets: FxHashMap::default(),
            rows_indexed: 0,
            generation: rel.generation(),
        };
        b.update_to(rel, len);
        b
    }

    /// The key columns this build is keyed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of rows already indexed.
    pub fn rows_indexed(&self) -> usize {
        self.rows_indexed
    }

    /// The relation generation this build's row indices are valid for.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Indexes any rows appended to `rel` since the last build/update.
    /// This is the incremental maintenance used by the `+` engines.
    /// Allocation-free except when a collision chain spills: keys are hashed
    /// in place via [`hash_projected`], never materialised.
    pub fn update(&mut self, rel: &Relation) {
        self.update_to(rel, rel.len());
    }

    /// Indexes rows up to (exclusive) row `len` — [`update`](Self::update)
    /// bounded by a version watermark. A no-op when `len` rows are already
    /// indexed; `len` is clamped to the relation's current length. When the
    /// relation was compacted since the last (re)index (its generation
    /// changed), every recorded row index is invalid and the build starts
    /// over from scratch.
    pub fn update_to(&mut self, rel: &Relation, len: usize) {
        if self.generation != rel.generation() {
            self.buckets.clear();
            self.rows_indexed = 0;
            self.generation = rel.generation();
        }
        let len = len.min(rel.len());
        if self.rows_indexed >= len {
            return;
        }
        for i in self.rows_indexed..len {
            let h = hash_projected(rel.row(i), &self.key_cols);
            self.buckets
                .entry(h)
                .or_default()
                .push(super::checked_row_index(i));
        }
        self.rows_indexed = len;
    }

    /// Returns the indices of rows of `rel` whose key equals `key`
    /// (hash collisions are verified).
    ///
    /// Allocates the result vector; hot paths should use the
    /// zero-allocation [`probe_iter`](Self::probe_iter) /
    /// [`probe_each`](Self::probe_each) instead.
    pub fn probe(&self, rel: &Relation, key: &[Sym]) -> Vec<usize> {
        self.probe_iter(rel, key).collect()
    }

    /// Zero-allocation probe: iterates over the indices of rows of `rel`
    /// whose key equals `key`, borrowing the bucket's collision chain
    /// directly (hash collisions are verified row by row).
    #[inline]
    pub fn probe_iter<'a>(&'a self, rel: &'a Relation, key: &'a [Sym]) -> ProbeIter<'a> {
        debug_assert_eq!(key.len(), self.key_cols.len());
        let chain = self
            .buckets
            .get(&hash_syms(key))
            .map(Bucket::as_slice)
            .unwrap_or(&[]);
        ProbeIter {
            chain,
            rel,
            key_cols: &self.key_cols,
            key,
        }
    }

    /// Zero-allocation probe: invokes `f` with each matching row index.
    /// Convenient when the iterator's borrow of `key` is awkward.
    #[inline]
    pub fn probe_each(&self, rel: &Relation, key: &[Sym], mut f: impl FnMut(usize)) {
        for idx in self.probe_iter(rel, key) {
            f(idx);
        }
    }
}

/// Borrowing iterator over verified probe hits — see
/// [`JoinBuild::probe_iter`].
#[derive(Debug, Clone)]
pub struct ProbeIter<'a> {
    chain: &'a [u32],
    rel: &'a Relation,
    key_cols: &'a [usize],
    key: &'a [Sym],
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while let Some((&i, rest)) = self.chain.split_first() {
            self.chain = rest;
            let i = i as usize;
            // Rows past the relation's current length can only appear when a
            // cached build is probed against a shorter clone; skip them.
            if i < self.rel.len() {
                let row = self.rel.row(i);
                if self
                    .key_cols
                    .iter()
                    .zip(self.key)
                    .all(|(&c, &k)| row[c] == k)
                {
                    return Some(i);
                }
            }
        }
        None
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.chain.len()))
    }
}

impl HeapSize for JoinBuild {
    fn heap_size(&self) -> usize {
        self.key_cols.heap_size() + self.buckets.heap_size()
    }
}

/// Extracts the join key of a row.
fn key_of(row: &[Sym], cols: &[usize], buf: &mut Vec<Sym>) {
    buf.clear();
    buf.extend(cols.iter().map(|&c| row[c]));
}

/// Output schema of [`hash_join`]: all columns of the left side, followed by
/// the columns of the right side that are **not** join keys, in order.
pub fn join_output_arity(left: &Relation, right: &Relation, right_keys: &[usize]) -> usize {
    left.arity() + right.arity() - right_keys.len()
}

/// Joins `left` and `right` on `left_keys[i] == right_keys[i]` using a
/// freshly built hash table over `right`.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let build = JoinBuild::build(right, right_keys);
    hash_join_with_build(left, right, left_keys, right_keys, &build)
}

/// [`hash_join`] bounded by version watermarks: only the first `left_len`
/// rows of `left` and the first `right_len` rows of `right` participate
/// (the build is constructed over exactly the right prefix, so probes can
/// never hit a post-watermark row). This is the join kernel of the
/// pipelined executor's deferred answering phase, which joins a batch's
/// deltas against the *snapshots* of the other covering paths' insert-only
/// views while newer batches append behind the watermarks (see
/// [`Relation::snapshot_at`]).
pub fn hash_join_prefix(
    left: &Relation,
    left_len: usize,
    right: &Relation,
    right_len: usize,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let build = JoinBuild::build_prefix(right, right_keys, right_len);
    probe_join(left, left_len, right, left_keys, right_keys, &build)
}

/// The shared probe-side kernel of every hash join: probes `build` (over
/// some prefix of `right`) with the first `left_len` rows of `left` and
/// assembles output rows. Callers choose the build (fresh, cached, or
/// prefix-bounded); this is the single copy of the hot loop.
fn probe_join(
    left: &Relation,
    left_len: usize,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    build: &JoinBuild,
) -> Relation {
    assert_eq!(left_keys.len(), right_keys.len());
    debug_assert_eq!(build.key_cols(), right_keys);
    let out_arity = join_output_arity(left, right, right_keys);
    let mut out = Relation::new(out_arity);
    let left_len = left_len.min(left.len());
    if left_len == 0 || build.rows_indexed() == 0 {
        return out;
    }
    let extra_cols: Vec<usize> = (0..right.arity())
        .filter(|c| !right_keys.contains(c))
        .collect();
    let mut key = Vec::with_capacity(left_keys.len());
    let mut row_buf = vec![Sym(0); out_arity];
    for lrow in left.iter().take(left_len) {
        key_of(lrow, left_keys, &mut key);
        for ridx in build.probe_iter(right, &key) {
            let rrow = right.row(ridx);
            row_buf[..lrow.len()].copy_from_slice(lrow);
            for (slot, &c) in row_buf[lrow.len()..].iter_mut().zip(&extra_cols) {
                *slot = rrow[c];
            }
            out.push(&row_buf);
        }
    }
    out
}

/// Joins `left` and `right` re-using an existing (possibly cached) build over
/// `right` keyed by `right_keys`.
pub fn hash_join_with_build(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    build: &JoinBuild,
) -> Relation {
    probe_join(left, left.len(), right, left_keys, right_keys, build)
}

/// Reference nested-loop join used to validate [`hash_join`] in property
/// tests. Never used on hot paths.
pub fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let out_arity = join_output_arity(left, right, right_keys);
    let mut out = Relation::new(out_arity);
    let extra_cols: Vec<usize> = (0..right.arity())
        .filter(|c| !right_keys.contains(c))
        .collect();
    for lrow in left.iter() {
        for rrow in right.iter() {
            if left_keys
                .iter()
                .zip(right_keys)
                .all(|(&lc, &rc)| lrow[lc] == rrow[rc])
            {
                let mut row = lrow.to_vec();
                row.extend(extra_cols.iter().map(|&c| rrow[c]));
                out.push(&row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    fn rel(arity: usize, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(arity);
        for row in rows {
            let row: Vec<Sym> = row.iter().map(|&v| s(v)).collect();
            r.push(&row);
        }
        r
    }

    #[test]
    fn simple_equijoin() {
        let left = rel(2, &[&[1, 2], &[3, 4], &[5, 2]]);
        let right = rel(2, &[&[2, 10], &[4, 20]]);
        // join left.col1 == right.col0
        let out = hash_join(&left, &right, &[1], &[0]);
        assert_eq!(out.arity(), 3);
        let mut rows = out.to_sorted_vec();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![s(1), s(2), s(10)],
                vec![s(3), s(4), s(20)],
                vec![s(5), s(2), s(10)],
            ]
        );
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let left = rel(1, &[&[1], &[2]]);
        let right = rel(2, &[&[7, 8]]);
        let out = hash_join(&left, &right, &[0], &[0]);
        assert!(out.is_empty());
    }

    #[test]
    fn join_on_multiple_keys() {
        let left = rel(3, &[&[1, 2, 3], &[1, 2, 4], &[9, 9, 9]]);
        let right = rel(3, &[&[1, 2, 100], &[9, 8, 200]]);
        let out = hash_join(&left, &right, &[0, 1], &[0, 1]);
        assert_eq!(out.arity(), 4);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&[s(1), s(2), s(3), s(100)]));
        assert!(out.contains(&[s(1), s(2), s(4), s(100)]));
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left = rel(2, &[&[1, 1], &[1, 2], &[2, 2], &[3, 1], &[4, 4]]);
        let right = rel(2, &[&[1, 5], &[2, 6], &[2, 7], &[9, 9]]);
        let a = hash_join(&left, &right, &[1], &[0]);
        let b = nested_loop_join(&left, &right, &[1], &[0]);
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    }

    #[test]
    fn incremental_build_update_sees_new_rows() {
        let mut right = rel(2, &[&[1, 10]]);
        let mut build = JoinBuild::build(&right, &[0]);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 1);
        right.push(&[s(1), s(11)]);
        right.push(&[s(2), s(12)]);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 1, "stale before update");
        build.update(&right);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 2);
        assert_eq!(build.probe(&right, &[s(2)]).len(), 1);
        assert_eq!(build.rows_indexed(), 3);
    }

    #[test]
    fn cached_build_join_equals_fresh_join() {
        let left = rel(2, &[&[1, 2], &[3, 2], &[5, 6]]);
        let mut right = rel(2, &[&[2, 10]]);
        let mut build = JoinBuild::build(&right, &[0]);
        right.push(&[s(6), s(60)]);
        build.update(&right);
        let cached = hash_join_with_build(&left, &right, &[1], &[0], &build);
        let fresh = hash_join(&left, &right, &[1], &[0]);
        assert_eq!(cached.to_sorted_vec(), fresh.to_sorted_vec());
    }

    #[test]
    fn probe_iter_and_probe_each_match_probe() {
        let r = rel(2, &[&[1, 10], &[1, 11], &[2, 20], &[3, 30]]);
        let build = JoinBuild::build(&r, &[0]);
        for key in 0u32..5 {
            let vec_api = build.probe(&r, &[s(key)]);
            let iter_api: Vec<usize> = build.probe_iter(&r, &[s(key)]).collect();
            let mut each_api = Vec::new();
            build.probe_each(&r, &[s(key)], |i| each_api.push(i));
            assert_eq!(vec_api, iter_api, "key {key}");
            assert_eq!(vec_api, each_api, "key {key}");
        }
        assert_eq!(build.probe(&r, &[s(1)]).len(), 2);
    }

    #[test]
    fn probe_iter_skips_rows_past_relation_length() {
        // A build over a longer relation probed against a shorter clone must
        // not yield out-of-range indices.
        let mut long = rel(2, &[&[1, 10]]);
        let short = long.clone();
        long.push(&[s(1), s(11)]);
        let build = JoinBuild::build(&long, &[0]);
        assert_eq!(build.probe_iter(&long, &[s(1)]).count(), 2);
        assert_eq!(build.probe_iter(&short, &[s(1)]).count(), 1);
    }

    #[test]
    fn update_is_idempotent_when_no_rows_were_added() {
        let r = rel(2, &[&[1, 10], &[2, 20]]);
        let mut build = JoinBuild::build(&r, &[0]);
        build.update(&r);
        build.update(&r);
        assert_eq!(build.rows_indexed(), 2);
        assert_eq!(build.probe(&r, &[s(1)]).len(), 1, "no duplicate indexing");
    }

    #[test]
    fn prefix_build_and_join_ignore_rows_past_the_watermark() {
        let left = rel(2, &[&[1, 2], &[3, 2], &[5, 6]]);
        let right = rel(2, &[&[2, 10], &[6, 60], &[2, 11]]);

        // Build over the 2-row prefix: the later (2, 11) row is invisible.
        let build = JoinBuild::build_prefix(&right, &[0], 2);
        assert_eq!(build.rows_indexed(), 2);
        assert_eq!(build.probe(&right, &[s(2)]).len(), 1);

        // update_to is monotone and clamps.
        let mut b2 = JoinBuild::build_prefix(&right, &[0], 1);
        b2.update_to(&right, 1); // no-op
        assert_eq!(b2.rows_indexed(), 1);
        b2.update_to(&right, 100); // clamped to len
        assert_eq!(b2.rows_indexed(), 3);

        // Bounded join == fresh join over physically truncated inputs.
        let joined = hash_join_prefix(&left, 2, &right, 2, &[1], &[0]);
        let left_cut = rel(2, &[&[1, 2], &[3, 2]]);
        let right_cut = rel(2, &[&[2, 10], &[6, 60]]);
        let expected = hash_join(&left_cut, &right_cut, &[1], &[0]);
        assert_eq!(joined.to_sorted_vec(), expected.to_sorted_vec());

        // Full-length bounds reproduce the unbounded join.
        let full = hash_join_prefix(&left, usize::MAX, &right, usize::MAX, &[1], &[0]);
        assert_eq!(
            full.to_sorted_vec(),
            hash_join(&left, &right, &[1], &[0]).to_sorted_vec()
        );

        // Zero-length sides are empty.
        assert!(hash_join_prefix(&left, 0, &right, 3, &[1], &[0]).is_empty());
        assert!(hash_join_prefix(&left, 3, &right, 0, &[1], &[0]).is_empty());
    }

    #[test]
    fn prefix_kernels_are_exact_at_chunk_boundaries() {
        use crate::relation::CHUNK_ROWS;
        // Cross the frozen-chunk edge with every version-bounded kernel:
        // builds, probes and prefix joins must behave identically whether
        // the watermark falls one row before, exactly at, or one row past a
        // chunk boundary — and whether the probed rows live in a frozen
        // chunk or in the tail.
        let mut right = Relation::new(2);
        for i in 0..(CHUNK_ROWS + 2) as u32 {
            // Key 7 appears at rows CHUNK_ROWS-1 (last row of the frozen
            // chunk), CHUNK_ROWS and CHUNK_ROWS+1 (first rows of the tail).
            let key = if i >= (CHUNK_ROWS - 1) as u32 {
                7
            } else {
                i % 5
            };
            right.push(&[s(key), s(1000 + i)]);
        }

        for len in [CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, CHUNK_ROWS + 2] {
            let build = JoinBuild::build_prefix(&right, &[0], len);
            assert_eq!(build.rows_indexed(), len);
            let hits = build.probe_iter(&right, &[s(7)]).count();
            // Rows with key 7 visible below the watermark.
            let expected = len - (CHUNK_ROWS - 1);
            assert_eq!(hits, expected, "len {len}");

            // The bounded join equals a join over physically truncated copies.
            let left = rel(1, &[&[7], &[3]]);
            let joined = hash_join_prefix(&left, left.len(), &right, len, &[0], &[0]);
            let mut cut = Relation::new(2);
            for row in right.iter().take(len) {
                cut.push(row);
            }
            let expected_join = hash_join(&left, &cut, &[0], &[0]);
            assert_eq!(
                joined.to_sorted_vec(),
                expected_join.to_sorted_vec(),
                "len {len}"
            );
        }

        // Incremental update_to across the boundary: index the frozen chunk
        // first, then extend into the tail.
        let mut build = JoinBuild::build_prefix(&right, &[0], CHUNK_ROWS - 1);
        assert_eq!(build.probe(&right, &[s(7)]).len(), 0);
        build.update_to(&right, CHUNK_ROWS + 2);
        assert_eq!(build.probe(&right, &[s(7)]).len(), 3);
    }

    #[test]
    fn update_rebuilds_after_compaction() {
        let mut r = rel(2, &[&[1, 10], &[2, 20], &[3, 30]]);
        let mut build = JoinBuild::build(&r, &[0]);
        // Retract the middle row: every later row index shifts, so the old
        // build would probe row 1 expecting key 2 and find key 3.
        let gone = rel(2, &[&[2, 20]]);
        r.retract_rows(&gone);
        build.update(&r);
        assert_eq!(build.generation(), r.generation());
        assert_eq!(build.probe(&r, &[s(2)]).len(), 0);
        assert_eq!(build.probe(&r, &[s(3)]).len(), 1, "shifted row found");
        assert_eq!(build.rows_indexed(), 2);
    }

    #[test]
    fn probe_verifies_collisions() {
        // Construct many keys; even if two hash to the same bucket the probe
        // must not return rows with a different key.
        let rows: Vec<Vec<u32>> = (0..2000).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = rel(2, &refs);
        let build = JoinBuild::build(&r, &[0]);
        for i in (0..2000).step_by(97) {
            let hits = build.probe(&r, &[s(i)]);
            assert_eq!(hits.len(), 1);
            assert_eq!(r.row(hits[0])[0], s(i));
        }
    }
}
