//! Hash joins over [`Relation`]s.
//!
//! The paper's materialization joins are classic build/probe hash joins
//! (Section 4.2, "Caching"): the smaller side is hashed on the join key and
//! the larger side probes it. The build structure ([`JoinBuild`]) is exposed
//! so that the `+` engine variants can cache it across updates and maintain
//! it incrementally as relations grow.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use super::Relation;
use crate::interner::Sym;
use crate::memory::HeapSize;

/// A build-side hash table over a relation keyed by a set of columns.
#[derive(Debug, Clone)]
pub struct JoinBuild {
    key_cols: Vec<usize>,
    /// key-hash → row indices (collision chains verified at probe time).
    buckets: HashMap<u64, Vec<u32>>,
    /// Number of rows of the underlying relation already indexed.
    rows_indexed: usize,
}

fn hash_key(key: &[Sym]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl JoinBuild {
    /// Builds a hash table over `rel` keyed by `key_cols`.
    pub fn build(rel: &Relation, key_cols: &[usize]) -> Self {
        let mut b = JoinBuild {
            key_cols: key_cols.to_vec(),
            buckets: HashMap::new(),
            rows_indexed: 0,
        };
        b.update(rel);
        b
    }

    /// The key columns this build is keyed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of rows already indexed.
    pub fn rows_indexed(&self) -> usize {
        self.rows_indexed
    }

    /// Indexes any rows appended to `rel` since the last build/update.
    /// This is the incremental maintenance used by the `+` engines.
    pub fn update(&mut self, rel: &Relation) {
        let mut key = vec![Sym(0); self.key_cols.len()];
        for i in self.rows_indexed..rel.len() {
            let row = rel.row(i);
            for (k, &c) in key.iter_mut().zip(&self.key_cols) {
                *k = row[c];
            }
            self.buckets.entry(hash_key(&key)).or_default().push(i as u32);
        }
        self.rows_indexed = rel.len();
    }

    /// Returns the indices of rows of `rel` whose key equals `key`
    /// (hash collisions are verified).
    pub fn probe(&self, rel: &Relation, key: &[Sym]) -> Vec<usize> {
        debug_assert_eq!(key.len(), self.key_cols.len());
        let Some(bucket) = self.buckets.get(&hash_key(key)) else {
            return Vec::new();
        };
        bucket
            .iter()
            .map(|&i| i as usize)
            .filter(|&i| {
                i < rel.len()
                    && self
                        .key_cols
                        .iter()
                        .zip(key)
                        .all(|(&c, &k)| rel.row(i)[c] == k)
            })
            .collect()
    }
}

impl HeapSize for JoinBuild {
    fn heap_size(&self) -> usize {
        self.key_cols.heap_size() + self.buckets.heap_size()
    }
}

/// Extracts the join key of a row.
fn key_of(row: &[Sym], cols: &[usize], buf: &mut Vec<Sym>) {
    buf.clear();
    buf.extend(cols.iter().map(|&c| row[c]));
}

/// Output schema of [`hash_join`]: all columns of the left side, followed by
/// the columns of the right side that are **not** join keys, in order.
pub fn join_output_arity(left: &Relation, right: &Relation, right_keys: &[usize]) -> usize {
    left.arity() + right.arity() - right_keys.len()
}

/// Joins `left` and `right` on `left_keys[i] == right_keys[i]` using a
/// freshly built hash table over `right`.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let build = JoinBuild::build(right, right_keys);
    hash_join_with_build(left, right, left_keys, right_keys, &build)
}

/// Joins `left` and `right` re-using an existing (possibly cached) build over
/// `right` keyed by `right_keys`.
pub fn hash_join_with_build(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
    build: &JoinBuild,
) -> Relation {
    assert_eq!(left_keys.len(), right_keys.len());
    debug_assert_eq!(build.key_cols(), right_keys);
    let out_arity = join_output_arity(left, right, right_keys);
    let mut out = Relation::new(out_arity);
    if left.is_empty() || right.is_empty() {
        return out;
    }
    let extra_cols: Vec<usize> = (0..right.arity())
        .filter(|c| !right_keys.contains(c))
        .collect();
    let mut key = Vec::with_capacity(left_keys.len());
    let mut row_buf = vec![Sym(0); out_arity];
    for lrow in left.iter() {
        key_of(lrow, left_keys, &mut key);
        for ridx in build.probe(right, &key) {
            let rrow = right.row(ridx);
            row_buf[..lrow.len()].copy_from_slice(lrow);
            for (slot, &c) in row_buf[lrow.len()..].iter_mut().zip(&extra_cols) {
                *slot = rrow[c];
            }
            out.push(&row_buf);
        }
    }
    out
}

/// Reference nested-loop join used to validate [`hash_join`] in property
/// tests. Never used on hot paths.
pub fn nested_loop_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let out_arity = join_output_arity(left, right, right_keys);
    let mut out = Relation::new(out_arity);
    let extra_cols: Vec<usize> = (0..right.arity())
        .filter(|c| !right_keys.contains(c))
        .collect();
    for lrow in left.iter() {
        for rrow in right.iter() {
            if left_keys
                .iter()
                .zip(right_keys)
                .all(|(&lc, &rc)| lrow[lc] == rrow[rc])
            {
                let mut row = lrow.to_vec();
                row.extend(extra_cols.iter().map(|&c| rrow[c]));
                out.push(&row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Sym {
        Sym(v)
    }

    fn rel(arity: usize, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(arity);
        for row in rows {
            let row: Vec<Sym> = row.iter().map(|&v| s(v)).collect();
            r.push(&row);
        }
        r
    }

    #[test]
    fn simple_equijoin() {
        let left = rel(2, &[&[1, 2], &[3, 4], &[5, 2]]);
        let right = rel(2, &[&[2, 10], &[4, 20]]);
        // join left.col1 == right.col0
        let out = hash_join(&left, &right, &[1], &[0]);
        assert_eq!(out.arity(), 3);
        let mut rows = out.to_sorted_vec();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![s(1), s(2), s(10)],
                vec![s(3), s(4), s(20)],
                vec![s(5), s(2), s(10)],
            ]
        );
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let left = rel(1, &[&[1], &[2]]);
        let right = rel(2, &[&[7, 8]]);
        let out = hash_join(&left, &right, &[0], &[0]);
        assert!(out.is_empty());
    }

    #[test]
    fn join_on_multiple_keys() {
        let left = rel(3, &[&[1, 2, 3], &[1, 2, 4], &[9, 9, 9]]);
        let right = rel(3, &[&[1, 2, 100], &[9, 8, 200]]);
        let out = hash_join(&left, &right, &[0, 1], &[0, 1]);
        assert_eq!(out.arity(), 4);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&[s(1), s(2), s(3), s(100)]));
        assert!(out.contains(&[s(1), s(2), s(4), s(100)]));
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left = rel(2, &[&[1, 1], &[1, 2], &[2, 2], &[3, 1], &[4, 4]]);
        let right = rel(2, &[&[1, 5], &[2, 6], &[2, 7], &[9, 9]]);
        let a = hash_join(&left, &right, &[1], &[0]);
        let b = nested_loop_join(&left, &right, &[1], &[0]);
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    }

    #[test]
    fn incremental_build_update_sees_new_rows() {
        let mut right = rel(2, &[&[1, 10]]);
        let mut build = JoinBuild::build(&right, &[0]);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 1);
        right.push(&[s(1), s(11)]);
        right.push(&[s(2), s(12)]);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 1, "stale before update");
        build.update(&right);
        assert_eq!(build.probe(&right, &[s(1)]).len(), 2);
        assert_eq!(build.probe(&right, &[s(2)]).len(), 1);
        assert_eq!(build.rows_indexed(), 3);
    }

    #[test]
    fn cached_build_join_equals_fresh_join() {
        let left = rel(2, &[&[1, 2], &[3, 2], &[5, 6]]);
        let mut right = rel(2, &[&[2, 10]]);
        let mut build = JoinBuild::build(&right, &[0]);
        right.push(&[s(6), s(60)]);
        build.update(&right);
        let cached = hash_join_with_build(&left, &right, &[1], &[0], &build);
        let fresh = hash_join(&left, &right, &[1], &[0]);
        assert_eq!(cached.to_sorted_vec(), fresh.to_sorted_vec());
    }

    #[test]
    fn probe_verifies_collisions() {
        // Construct many keys; even if two hash to the same bucket the probe
        // must not return rows with a different key.
        let rows: Vec<Vec<u32>> = (0..2000).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = rel(2, &refs);
        let build = JoinBuild::build(&r, &[0]);
        for i in (0..2000).step_by(97) {
            let hits = build.probe(&r, &[s(i)]);
            assert_eq!(hits.len(), 1);
            assert_eq!(r.row(hits[0])[0], s(i));
        }
    }
}
