//! The engine abstraction shared by TRIC, TRIC+, the inverted-index
//! baselines and the graph-database baseline.

use crate::error::{Error, Result};
use crate::memory::HeapSize;
use crate::model::update::Update;
use crate::query::pattern::QueryPattern;

/// Identifier assigned to a registered continuous query by an engine.
///
/// Engines assign identifiers sequentially in registration order, so
/// registering the same query set in the same order against two engines
/// yields directly comparable identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HeapSize for QueryId {
    fn heap_size(&self) -> usize {
        0
    }
}

/// A query affected by an update, together with how many embeddings the
/// update created — and, for retraction updates, how many previously
/// reported embeddings disappeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMatch {
    /// The affected query.
    pub query: QueryId,
    /// Number of distinct new embeddings created by the update.
    pub new_embeddings: u64,
    /// Number of distinct previously existing embeddings destroyed by the
    /// update (always 0 for pure addition batches).
    pub retracted_embeddings: u64,
}

impl QueryMatch {
    /// A pure-addition match entry.
    pub fn new(query: QueryId, new_embeddings: u64) -> Self {
        QueryMatch {
            query,
            new_embeddings,
            retracted_embeddings: 0,
        }
    }

    /// A pure-retraction match entry.
    pub fn retracted(query: QueryId, retracted_embeddings: u64) -> Self {
        QueryMatch {
            query,
            new_embeddings: 0,
            retracted_embeddings,
        }
    }
}

/// The result of applying one update: which continuous queries gained at
/// least one new embedding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchReport {
    /// Matches, sorted by query id, at most one entry per query.
    pub matches: Vec<QueryMatch>,
}

impl MatchReport {
    /// An empty report.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a report from (query, count) pairs, merging duplicates and
    /// sorting by query id.
    ///
    /// Implemented as sort-then-fold **by key**: every pair — zero counts
    /// included — folds into its query's accumulated count, and zero-total
    /// queries are dropped in one pass at the end. Folding by key keeps the
    /// merge manifestly independent of where zero-count pairs land in the
    /// sort order, instead of relying on the interplay between an early
    /// zero-skip and `last_mut()` adjacency.
    pub fn from_counts(mut pairs: Vec<(QueryId, u64)>) -> Self {
        pairs.sort_by_key(|(q, _)| *q);
        let mut matches: Vec<QueryMatch> = Vec::new();
        for (query, count) in pairs {
            match matches.last_mut() {
                Some(last) if last.query == query => last.new_embeddings += count,
                _ => matches.push(QueryMatch::new(query, count)),
            }
        }
        matches.retain(|m| m.new_embeddings > 0);
        MatchReport { matches }
    }

    /// Builds a report from pure-**retraction** (query, destroyed count)
    /// pairs — [`from_counts`](MatchReport::from_counts) with the counts
    /// landing on `retracted_embeddings`.
    pub fn from_retraction_counts(mut pairs: Vec<(QueryId, u64)>) -> Self {
        pairs.sort_by_key(|(q, _)| *q);
        let mut matches: Vec<QueryMatch> = Vec::new();
        for (query, count) in pairs {
            match matches.last_mut() {
                Some(last) if last.query == query => last.retracted_embeddings += count,
                _ => matches.push(QueryMatch::retracted(query, count)),
            }
        }
        matches.retain(|m| m.retracted_embeddings > 0);
        MatchReport { matches }
    }

    /// Merges two reports: per-query embedding counts add, and the result is
    /// again sorted with at most one entry per query.
    ///
    /// # Merge contract
    ///
    /// This is the operation the sharded wrapper
    /// ([`crate::shard::ShardedEngine`]) uses to combine per-shard reports,
    /// so it must be — and is, by construction over sorted unique entries
    /// with additive counts — **associative and commutative**, with
    /// [`MatchReport::empty`] as the identity. Shards may therefore be
    /// merged in any order, or any grouping, without changing the result;
    /// the property tests in `tests/property_engines.rs` pin this down.
    pub fn merge(&self, other: &MatchReport) -> MatchReport {
        let mut matches = Vec::with_capacity(self.matches.len() + other.matches.len());
        let (mut i, mut j) = (0, 0);
        while i < self.matches.len() && j < other.matches.len() {
            let (a, b) = (self.matches[i], other.matches[j]);
            match a.query.cmp(&b.query) {
                std::cmp::Ordering::Less => {
                    matches.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    matches.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    matches.push(QueryMatch {
                        query: a.query,
                        new_embeddings: a.new_embeddings + b.new_embeddings,
                        retracted_embeddings: a.retracted_embeddings + b.retracted_embeddings,
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        matches.extend_from_slice(&self.matches[i..]);
        matches.extend_from_slice(&other.matches[j..]);
        MatchReport { matches }
    }

    /// Queries reported as satisfied, sorted.
    pub fn satisfied_queries(&self) -> Vec<QueryId> {
        self.matches.iter().map(|m| m.query).collect()
    }

    /// True if no query was satisfied.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Number of satisfied queries.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Total number of new embeddings across all satisfied queries.
    pub fn total_embeddings(&self) -> u64 {
        self.matches.iter().map(|m| m.new_embeddings).sum()
    }

    /// Total number of retracted embeddings across all affected queries.
    pub fn total_retracted(&self) -> u64 {
        self.matches.iter().map(|m| m.retracted_embeddings).sum()
    }
}

/// The token handed from [`ContinuousEngine::stage_batch`] to
/// [`ContinuousEngine::answer_staged`]: a batch whose routing/propagation
/// phase has run but whose final covering-path join (answering) phase may
/// still be pending.
///
/// Engines that do not split their phases produce **immediate** tokens (the
/// report was already computed at stage time); engines that do split —
/// TRIC/TRIC+ and the sharded wrapper — produce **deferred** tokens carrying
/// the engine-specific data the answer phase needs (per-path delta relations
/// plus the version watermarks of the views to join against). The token is
/// deliberately type-erased (`Box<dyn Any>`) so the trait stays
/// object-safe; an engine only ever downcasts tokens it produced itself.
#[derive(Debug)]
pub struct StagedBatch(StagedRepr);

enum StagedRepr {
    /// Answering already happened at stage time; the report is final.
    Immediate(MatchReport),
    /// Engine-specific deferred-answer state.
    Deferred(Box<dyn std::any::Any + Send>),
}

impl std::fmt::Debug for StagedRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagedRepr::Immediate(r) => f.debug_tuple("Immediate").field(r).finish(),
            StagedRepr::Deferred(_) => f.debug_tuple("Deferred").finish(),
        }
    }
}

impl StagedBatch {
    /// Wraps a report computed eagerly at stage time (the default
    /// implementation's token).
    pub fn immediate(report: MatchReport) -> Self {
        StagedBatch(StagedRepr::Immediate(report))
    }

    /// Wraps engine-specific deferred-answer state. An engine returning
    /// deferred tokens from [`ContinuousEngine::stage_batch`] **must**
    /// override [`ContinuousEngine::answer_staged`] to consume them.
    pub fn deferred<T: std::any::Any + Send>(token: T) -> Self {
        StagedBatch(StagedRepr::Deferred(Box::new(token)))
    }

    /// True if the report was already computed at stage time.
    pub fn is_immediate(&self) -> bool {
        matches!(self.0, StagedRepr::Immediate(_))
    }

    /// Consumes an immediate token. Panics on a deferred token: the engine
    /// that produced it failed to override `answer_staged`.
    pub fn into_immediate(self) -> MatchReport {
        match self.0 {
            StagedRepr::Immediate(report) => report,
            StagedRepr::Deferred(_) => panic!(
                "deferred StagedBatch reached the default answer_staged; \
                 an engine overriding stage_batch must override answer_staged"
            ),
        }
    }

    /// Consumes a deferred token of concrete type `T`, or returns the
    /// immediate report (`Err`) so overriding engines can pass through
    /// tokens produced by the default stage path. Panics if the deferred
    /// token has a different concrete type — tokens must be answered by the
    /// engine that staged them.
    pub fn into_deferred<T: std::any::Any>(self) -> std::result::Result<T, MatchReport> {
        match self.0 {
            StagedRepr::Immediate(report) => Err(report),
            StagedRepr::Deferred(any) => Ok(*any
                .downcast::<T>()
                .expect("StagedBatch answered by an engine that did not stage it")),
        }
    }
}

/// A staged batch's answer pass, detached from its engine: a self-contained
/// task that can run on **any thread** — see
/// [`ContinuousEngine::detach_staged`].
///
/// Detached answers come in two flavours. A *ready* answer carries a report
/// that was already computed (eager engines, empty batches); a *task* answer
/// carries a `Send` closure that owns everything the covering-path join pass
/// needs — batch deltas plus frozen snapshots of the views at the staged
/// watermarks ([`crate::relation::Relation::snapshot_owned`]) — so running
/// it never touches the engine. This is what lets the pipelined executor's
/// dedicated answer thread work on batch *N* while the engine, on the caller
/// thread, is already staging batch *N + 1*.
pub struct DetachedAnswer(DetachedRepr);

enum DetachedRepr {
    Ready(MatchReport),
    Task(Box<dyn FnOnce() -> MatchReport + Send>),
}

impl std::fmt::Debug for DetachedAnswer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            DetachedRepr::Ready(r) => f.debug_tuple("Ready").field(r).finish(),
            DetachedRepr::Task(_) => f.debug_tuple("Task").finish(),
        }
    }
}

impl DetachedAnswer {
    /// Wraps an already-computed report (nothing left to run).
    pub fn ready(report: MatchReport) -> Self {
        DetachedAnswer(DetachedRepr::Ready(report))
    }

    /// Wraps a self-contained answer task. The closure must own (or share
    /// via `Arc`) every piece of state it reads; it runs at most once, on an
    /// arbitrary thread.
    pub fn task(f: impl FnOnce() -> MatchReport + Send + 'static) -> Self {
        DetachedAnswer(DetachedRepr::Task(Box::new(f)))
    }

    /// True if the report was already computed when the answer was detached.
    pub fn is_ready(&self) -> bool {
        matches!(self.0, DetachedRepr::Ready(_))
    }

    /// Runs the answer pass (a no-op for ready answers) and returns the
    /// batch's report.
    pub fn run(self) -> MatchReport {
        match self.0 {
            DetachedRepr::Ready(report) => report,
            DetachedRepr::Task(f) => f(),
        }
    }
}

/// Cumulative counters every engine keeps; used by the harness for sanity
/// checks and by EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Updates processed so far.
    pub updates_processed: u64,
    /// Total (query, update) notifications emitted.
    pub notifications: u64,
    /// Total new embeddings reported.
    pub embeddings: u64,
    /// Total retracted embeddings reported.
    pub retracted: u64,
}

/// A continuous multi-query engine over graph streams.
///
/// The lifecycle is: register the query database (the paper supports
/// continuous additions, so registration may be interleaved with updates),
/// then feed the update stream one edge addition at a time; each call reports
/// the queries for which the update created new embeddings.
///
/// # Sharding
///
/// Any engine can be partitioned across workers with
/// [`crate::shard::ShardedEngine`]. The contract is:
///
/// * **Ownership is by root generic edge.** Every covering path of every
///   query roots at some generic edge; [`crate::shard::shard_of`]
///   deterministically assigns each root edge — and the trie nodes / path
///   states and edge views reachable from it — to exactly one shard.
///   Queries whose covering-path roots all map to one shard live entirely
///   on that shard's inner engine; queries whose roots span shards are
///   answered by a post-merge covering-path join pass over shard-local
///   path deltas.
/// * **Reports merge associatively.** Per-shard reports combine with
///   [`MatchReport::merge`]: per-query counts add, and the merge is
///   associative, commutative and order-insensitive, so the final report
///   is independent of shard scheduling.
/// * **Observational equivalence.** For a query database registered
///   before streaming — and for mid-stream registrations whose edges
///   carry no prior history — the sharded engine's reports are identical
///   to the unsharded engine's at every shard count, in both per-update
///   and batched replay (pinned by the shard-count differential matrix in
///   the test suites). A query registered mid-stream over edges whose
///   history lives on *other* shards catches up with less history than an
///   unsharded engine would see; see the "Late registration" note in
///   [`crate::shard`].
pub trait ContinuousEngine {
    /// Short, stable engine name (`"TRIC"`, `"INV+"`, …) used in reports.
    fn name(&self) -> &'static str;

    /// Registers a continuous query and returns its identifier.
    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId>;

    /// Unregisters a previously registered query: its routing entries are
    /// removed, its index/trie structures are pruned, and it never reports
    /// again. Returns [`Error::UnknownQuery`](crate::error::Error) for ids
    /// never issued or already unregistered.
    ///
    /// # Identifier stability (tombstones)
    ///
    /// [`QueryId`]s are **never reused**: unregistration tombstones the id's
    /// slot, later registrations keep drawing fresh ids
    /// ([`next_query_id`](Self::next_query_id)), and a report row can
    /// therefore always be attributed to exactly one registration for the
    /// engine's whole lifetime — the property the multi-tenant server layer
    /// and the persistence WAL replay rely on.
    /// [`num_queries`](Self::num_queries) counts **live** queries only and
    /// no longer tracks the id space once a query has been unregistered.
    ///
    /// Like [`register_query`](Self::register_query), this must not be
    /// called while staged tokens are outstanding (see the staging contract
    /// on [`stage_batch`](Self::stage_batch)); the pipelined executor drains
    /// its window first, and its epoch queue
    /// ([`crate::pipeline::PipelinedEngine::queue_unregister`]) defers the
    /// call to the next drain boundary automatically.
    ///
    /// The default returns
    /// [`Error::UnsupportedUnregister`](crate::error::Error): toy and
    /// special-purpose engines may opt out; every engine and wrapper in this
    /// workspace overrides it.
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        let _ = query;
        Err(Error::UnsupportedUnregister(self.name()))
    }

    /// The identifier the **next** successful
    /// [`register_query`](Self::register_query) will return.
    ///
    /// Equal to `QueryId(num_queries())` until the first unregistration;
    /// tombstoning engines override it to return the slot count (live +
    /// tombstoned), since ids are never reused. Wrappers (the pipelined
    /// epoch queue, the server layer) use it to promise ids for queued
    /// registrations before the boundary applies them.
    fn next_query_id(&self) -> QueryId {
        QueryId(self.num_queries() as u32)
    }

    /// True when `query` names a currently registered (live, not
    /// tombstoned) query. The default is exact for engines without
    /// unregistration support, where ids are dense; tombstoning engines
    /// override it.
    fn is_registered(&self, query: QueryId) -> bool {
        query.index() < self.num_queries()
    }

    /// Applies one signed edge update and reports the affected queries: an
    /// addition reports queries that gained embeddings
    /// (`new_embeddings`), a retraction ([`Update::is_retraction`]) reports
    /// queries whose previously reported embeddings disappeared
    /// (`retracted_embeddings`). Retracting an absent edge is a no-op;
    /// every engine must accept both signs here.
    fn apply_update(&mut self, update: Update) -> MatchReport;

    /// Applies a batch of signed edge updates and reports the queries whose
    /// embedding sets changed anywhere in the batch.
    ///
    /// # Batch semantics
    ///
    /// The report is **observationally equivalent** to applying the batch
    /// sequentially with [`apply_update`](Self::apply_update) and merging the
    /// per-update reports with [`MatchReport::from_counts`]: one entry per
    /// satisfied query, whose `new_embeddings` is the number of distinct new
    /// embeddings the whole batch created for that query and whose
    /// `retracted_embeddings` is the number it destroyed. Duplicate updates
    /// inside a batch behave exactly as they would sequentially (the second
    /// occurrence adds nothing), and an insert-then-retract of the same edge
    /// within one batch reports **both** the created and the destroyed
    /// embeddings — they do not cancel. Engines are free to reorder *work*
    /// inside a batch (routing, delta propagation, joins) but not its
    /// outcome.
    ///
    /// Stats granularity: `updates_processed` advances by `updates.len()`,
    /// `embeddings` by the report's total (both identical to sequential
    /// execution), while `notifications` counts one event per *reported
    /// query per `apply_*` call* at the granularity the engine actually
    /// processed — a batched engine notifies a query once per batch, so its
    /// `notifications` may be lower than under sequential execution (the
    /// fold-based default keeps per-update granularity). Differential
    /// harnesses should therefore compare reports, `updates_processed` and
    /// `embeddings`, never `notifications`.
    ///
    /// The default implementation folds [`apply_update`](Self::apply_update);
    /// engines with a cheaper amortized path (TRIC/TRIC+, INV/INC) override
    /// it.
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        let mut report = MatchReport::empty();
        for &u in updates {
            report = report.merge(&self.apply_update(u));
        }
        report
    }

    /// Phase 1 of split batch answering: routing, delta propagation and view
    /// appends for `updates`, with the final covering-path join (the answer
    /// phase) deferred into the returned token.
    ///
    /// # Staging contract
    ///
    /// Together with [`answer_staged`](Self::answer_staged) this is the
    /// substrate of the pipelined executor ([`crate::pipeline`]):
    ///
    /// * `stage_batch(N)` followed eventually by `answer_staged(N)` must
    ///   report exactly what `apply_batch(N)` would have.
    /// * **Later stages may run first**: `stage_batch(N + 1)` (and further
    ///   stages) may execute *before* `answer_staged(N)`. Engines guarantee
    ///   this by answering against version watermarks captured at stage
    ///   time — the insert-only views ([`crate::relation::Relation`]
    ///   versioning) make rows appended by later stages invisible to an
    ///   earlier batch's answer pass.
    /// * Tokens must be answered in stage (FIFO) order, each exactly once,
    ///   and by the engine that staged them.
    /// * [`register_query`](Self::register_query) and
    ///   [`unregister_query`](Self::unregister_query) must not be called
    ///   while staged tokens are outstanding (either may restructure the
    ///   very tries and views the deferred answer joins against); the
    ///   pipelined executor drains its window before registering, and the
    ///   pipelined/sharded wrappers **enforce** the contract by returning
    ///   [`crate::error::Error::RegistrationWhileStaged`] when it is
    ///   violated. Lifecycle calls arriving mid-stream go through the
    ///   pipelined executor's **epoch queue** instead
    ///   ([`crate::pipeline::PipelinedEngine::queue_register`]), which
    ///   applies them at the next drain boundary.
    /// * **Retraction runs stage too — commit at stage time, answer
    ///   deferred.** `stage_batch` of an all-retraction batch collects the
    ///   removed delta relations read-only
    ///   ([`crate::views::EdgeViewStore::remove_deltas`]), freezes the
    ///   pre-removal answer inputs into the token as **generation-pinned
    ///   snapshots** ([`crate::relation::Relation::snapshot_owned`] shares
    ///   frozen chunks by `Arc`, so they outlive any later compaction),
    ///   and then performs the destructive commit (`retract_rows` /
    ///   `retract_deltas`, generation bump, cache invalidation) before
    ///   returning. Only the expensive disappearing-embedding join is
    ///   deferred. The commit *cannot* wait for answer time: a later staged
    ///   insert of a just-retracted edge must route against post-removal
    ///   views, or it would be dedup-dropped and the stream would diverge
    ///   from sequential execution.
    /// * Because the commit compacts live relations, staging a retraction
    ///   run requires **every earlier token to have been answered or
    ///   detached already** — detached tasks are safe (their inputs are
    ///   frozen behind `Arc` pins), but an unanswered inline token may hold
    ///   watermarks into the live relations being compacted. The pipelined
    ///   executor guarantees this by detaching every token at stage time in
    ///   threaded mode and answering its inline window before staging a
    ///   retraction run (see [`crate::pipeline`]).
    /// * `stage_batch` of a **mixed-sign** batch falls back to an immediate
    ///   token (`apply_batch` at stage time). Callers wanting deferral split
    ///   first with [`crate::model::update::sign_runs`], as the pipelined
    ///   executor does.
    /// * Stats granularity: `updates_processed` advances at stage time,
    ///   `notifications`/`embeddings` at answer time.
    ///
    /// The default implementation runs the whole `apply_batch` eagerly and
    /// stores the report in an immediate token, which trivially satisfies
    /// the contract; engines with a genuine phase split (TRIC/TRIC+, the
    /// sharded wrapper) override both methods.
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        StagedBatch::immediate(self.apply_batch(updates))
    }

    /// Phase 2 of split batch answering: consumes a token produced by
    /// [`stage_batch`](Self::stage_batch) and returns the batch's report.
    /// See the staging contract on `stage_batch`.
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        staged.into_immediate()
    }

    /// Converts a staged token into a **self-contained** answer task that
    /// may run on another thread — the cross-thread form of
    /// [`answer_staged`](Self::answer_staged).
    ///
    /// # Detachment contract (`Send`/`Sync` requirements)
    ///
    /// * `detach_staged` itself runs on the engine's thread (it may read the
    ///   live views to freeze snapshots into the task); only the returned
    ///   [`DetachedAnswer`] crosses threads, and it is `Send` by
    ///   construction. An overriding engine must capture every input of its
    ///   answer pass as owned or `Send + Sync` shared data — batch deltas,
    ///   [`crate::relation::Relation::snapshot_owned`] view snapshots frozen
    ///   at the staged watermarks, `Arc`-shared read-mostly metadata (query
    ///   records, routing maps, published
    ///   [`crate::relation::cache::FrozenJoinCache`] builds) — and the task
    ///   must not rely on `&self`. Read-mostly state should be published
    ///   copy-on-write rather than deep-copied per batch: the engine thread
    ///   mutates via `Arc::make_mut` (safe because registration barriers
    ///   the pipeline first, and cache mutation drops the publication
    ///   handle), so detaching is an `Arc` bump.
    /// * Running the tasks of several staged batches **concurrently or in
    ///   any order** must produce the same per-batch reports as FIFO
    ///   `answer_staged` calls: each task joins against its own frozen
    ///   watermarks, so later stages are invisible to it (same insert-only
    ///   versioning argument as the staging contract). Retraction tokens
    ///   carry fully frozen pre-removal snapshots, so their tasks are
    ///   likewise immune to the generation bumps their own (or any later)
    ///   commit performed.
    /// * Tokens must still each be detached (in stage order, by the engine
    ///   that staged them) exactly once, and every task's report must be
    ///   folded back with [`absorb_answered`](Self::absorb_answered) exactly
    ///   once, from the engine's thread.
    /// * Stats granularity: `updates_processed` advanced at stage time;
    ///   `notifications`/`embeddings` advance in `absorb_answered` for
    ///   detached answers (the task itself cannot touch the engine).
    ///
    /// The default implementation answers **inline** (on this thread, right
    /// now) and returns a ready answer — correct for every engine, with no
    /// cross-thread overlap; engines with a real phase split (TRIC/TRIC+,
    /// INV/INC and the sharded wrapper) override it together with
    /// `absorb_answered`.
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        DetachedAnswer::ready(self.answer_staged(staged))
    }

    /// Folds the report of a detached answer task back into the engine's
    /// cumulative counters. Must be called exactly once per
    /// [`detach_staged`](Self::detach_staged) token, in stage (FIFO) order,
    /// from the engine's thread.
    ///
    /// The default is a no-op, pairing with the default `detach_staged`
    /// (which answered inline through `answer_staged` and therefore already
    /// counted); engines overriding `detach_staged` with genuinely deferred
    /// tasks override this to advance
    /// `notifications`/`embeddings`/`retracted`.
    fn absorb_answered(&mut self, report: &MatchReport) {
        let _ = report;
    }

    /// Number of registered queries.
    fn num_queries(&self) -> usize;

    /// Estimated heap footprint of all engine state, in bytes.
    fn heap_bytes(&self) -> usize;

    /// Cumulative counters.
    fn stats(&self) -> EngineStats;

    /// Applies every update of a stream one at a time, discarding the
    /// individual reports, and returns the total number of notifications.
    /// Convenience for warm-up phases and tests.
    fn apply_stream(&mut self, updates: &[Update]) -> u64 {
        self.apply_stream_batched(updates, 1)
    }

    /// Applies a stream in batches of `batch_size` updates (the final batch
    /// may be shorter; `batch_size == 0` means one batch spanning the whole
    /// stream), discarding the individual reports, and returns the total
    /// number of notifications at batch granularity (see
    /// [`apply_batch`](Self::apply_batch) for the semantics).
    fn apply_stream_batched(&mut self, updates: &[Update], batch_size: usize) -> u64 {
        let chunk = if batch_size == 0 {
            updates.len().max(1)
        } else {
            batch_size
        };
        let mut notifications = 0;
        for batch in updates.chunks(chunk) {
            notifications += self.apply_batch(batch).len() as u64;
        }
        notifications
    }
}

/// Forwarding implementation so boxed engines (including trait objects such
/// as `Box<dyn ContinuousEngine + Send>`) can be wrapped and sharded like
/// concrete ones. Every method — including the overridable batch entry
/// points — delegates to the boxed engine.
impl<T: ContinuousEngine + ?Sized> ContinuousEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn register_query(&mut self, query: &QueryPattern) -> Result<QueryId> {
        (**self).register_query(query)
    }
    fn unregister_query(&mut self, query: QueryId) -> Result<()> {
        (**self).unregister_query(query)
    }
    fn next_query_id(&self) -> QueryId {
        (**self).next_query_id()
    }
    fn is_registered(&self, query: QueryId) -> bool {
        (**self).is_registered(query)
    }
    fn apply_update(&mut self, update: Update) -> MatchReport {
        (**self).apply_update(update)
    }
    fn apply_batch(&mut self, updates: &[Update]) -> MatchReport {
        (**self).apply_batch(updates)
    }
    fn stage_batch(&mut self, updates: &[Update]) -> StagedBatch {
        (**self).stage_batch(updates)
    }
    fn answer_staged(&mut self, staged: StagedBatch) -> MatchReport {
        (**self).answer_staged(staged)
    }
    fn detach_staged(&mut self, staged: StagedBatch) -> DetachedAnswer {
        (**self).detach_staged(staged)
    }
    fn absorb_answered(&mut self, report: &MatchReport) {
        (**self).absorb_answered(report)
    }
    fn num_queries(&self) -> usize {
        (**self).num_queries()
    }
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
    fn stats(&self) -> EngineStats {
        (**self).stats()
    }
    fn apply_stream(&mut self, updates: &[Update]) -> u64 {
        (**self).apply_stream(updates)
    }
    fn apply_stream_batched(&mut self, updates: &[Update], batch_size: usize) -> u64 {
        (**self).apply_stream_batched(updates, batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_counts_merges_and_sorts() {
        let report = MatchReport::from_counts(vec![
            (QueryId(3), 2),
            (QueryId(1), 1),
            (QueryId(3), 5),
            (QueryId(2), 0),
        ]);
        assert_eq!(report.len(), 2);
        assert_eq!(report.satisfied_queries(), vec![QueryId(1), QueryId(3)]);
        assert_eq!(report.matches[1].new_embeddings, 7);
        assert_eq!(report.total_embeddings(), 8);
    }

    #[test]
    fn empty_report() {
        let r = MatchReport::empty();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.total_embeddings(), 0);
    }

    #[test]
    fn zero_count_pairs_are_dropped() {
        let r = MatchReport::from_counts(vec![(QueryId(0), 0)]);
        assert!(r.is_empty());
    }

    /// A deterministic toy engine: query 0 is "satisfied" by every update
    /// whose label has an even raw symbol, with one embedding per update.
    /// Exists purely to exercise the trait's default batch plumbing.
    struct ToyEngine {
        stats: EngineStats,
    }

    impl ContinuousEngine for ToyEngine {
        fn name(&self) -> &'static str {
            "TOY"
        }
        fn register_query(
            &mut self,
            _query: &crate::query::pattern::QueryPattern,
        ) -> crate::error::Result<QueryId> {
            Ok(QueryId(0))
        }
        fn apply_update(&mut self, update: crate::model::update::Update) -> MatchReport {
            self.stats.updates_processed += 1;
            let report = if update.label.0.is_multiple_of(2) {
                MatchReport::from_counts(vec![(QueryId(0), 1)])
            } else {
                MatchReport::empty()
            };
            self.stats.notifications += report.len() as u64;
            self.stats.embeddings += report.total_embeddings();
            report
        }
        fn num_queries(&self) -> usize {
            1
        }
        fn heap_bytes(&self) -> usize {
            0
        }
        fn stats(&self) -> EngineStats {
            self.stats
        }
    }

    fn toy_updates() -> Vec<crate::model::update::Update> {
        use crate::interner::Sym;
        (0..10u32)
            .map(|i| crate::model::update::Update::new(Sym(i % 3), Sym(i), Sym(i + 1)))
            .collect()
    }

    #[test]
    fn default_apply_batch_merges_sequential_reports() {
        let updates = toy_updates();
        let mut batched = ToyEngine {
            stats: EngineStats::default(),
        };
        let report = batched.apply_batch(&updates);
        // Labels cycle 0,1,2: the even labels 0 and 2 hit on 7 of 10 updates.
        assert_eq!(report.len(), 1);
        assert_eq!(report.matches[0].query, QueryId(0));
        assert_eq!(report.matches[0].new_embeddings, 7);
        assert_eq!(batched.stats().updates_processed, 10);

        let mut empty = ToyEngine {
            stats: EngineStats::default(),
        };
        assert!(empty.apply_batch(&[]).is_empty());
        assert_eq!(empty.stats().updates_processed, 0);
    }

    #[test]
    fn apply_stream_batched_covers_every_chunking() {
        let updates = toy_updates();
        for batch_size in [0usize, 1, 3, 7, 100] {
            let mut engine = ToyEngine {
                stats: EngineStats::default(),
            };
            engine.apply_stream_batched(&updates, batch_size);
            assert_eq!(
                engine.stats().updates_processed,
                10,
                "batch_size {batch_size} dropped updates"
            );
            assert_eq!(engine.stats().embeddings, 7);
        }
        // The plain stream entry point is the batch_size == 1 case.
        let mut engine = ToyEngine {
            stats: EngineStats::default(),
        };
        let notifications = engine.apply_stream(&updates);
        assert_eq!(notifications, 7);
    }

    #[test]
    fn default_stage_then_answer_equals_apply_batch() {
        let updates = toy_updates();
        let mut split = ToyEngine {
            stats: EngineStats::default(),
        };
        let staged = split.stage_batch(&updates);
        assert!(staged.is_immediate());
        let report = split.answer_staged(staged);

        let mut whole = ToyEngine {
            stats: EngineStats::default(),
        };
        assert_eq!(report, whole.apply_batch(&updates));
        assert_eq!(split.stats(), whole.stats());
    }

    #[test]
    fn staged_batch_token_roundtrips() {
        let report = MatchReport::from_counts(vec![(QueryId(1), 2)]);
        assert_eq!(
            StagedBatch::immediate(report.clone()).into_immediate(),
            report
        );
        // An overriding engine passes immediate tokens through as Err.
        assert_eq!(
            StagedBatch::immediate(report.clone()).into_deferred::<u32>(),
            Err(report)
        );
        let token = StagedBatch::deferred(41u32);
        assert!(!token.is_immediate());
        assert_eq!(token.into_deferred::<u32>(), Ok(41));
    }

    #[test]
    #[should_panic(expected = "must override answer_staged")]
    fn deferred_token_in_default_answer_panics() {
        StagedBatch::deferred(()).into_immediate();
    }

    #[test]
    fn default_detach_answers_inline_and_absorb_is_a_noop() {
        let updates = toy_updates();
        let mut split = ToyEngine {
            stats: EngineStats::default(),
        };
        let staged = split.stage_batch(&updates);
        let detached = split.detach_staged(staged);
        assert!(detached.is_ready(), "default detach answers eagerly");
        // Stats were already counted by the inline answer; the report can
        // run on another thread and absorb must not double count.
        let stats_before = split.stats();
        let report = std::thread::spawn(move || detached.run())
            .join()
            .expect("detached answers are Send");
        split.absorb_answered(&report);
        assert_eq!(split.stats(), stats_before);

        let mut whole = ToyEngine {
            stats: EngineStats::default(),
        };
        assert_eq!(report, whole.apply_batch(&updates));
    }

    #[test]
    fn detached_task_runs_once_on_demand() {
        let task = DetachedAnswer::task(|| MatchReport::from_counts(vec![(QueryId(2), 3)]));
        assert!(!task.is_ready());
        assert_eq!(task.run().total_embeddings(), 3);
        let ready = DetachedAnswer::ready(MatchReport::empty());
        assert!(ready.is_ready());
        assert!(ready.run().is_empty());
    }

    #[test]
    fn retraction_counts_merge_without_cancelling() {
        let gained = MatchReport::from_counts(vec![(QueryId(1), 3), (QueryId(2), 1)]);
        let lost = MatchReport::from_retraction_counts(vec![(QueryId(1), 3), (QueryId(3), 2)]);
        assert_eq!(lost.total_embeddings(), 0);
        assert_eq!(lost.total_retracted(), 5);
        assert_eq!(lost.satisfied_queries(), vec![QueryId(1), QueryId(3)]);

        // +3/−3 on query 1 must surface as both counts, not cancel to zero.
        let merged = gained.merge(&lost);
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.matches[0],
            QueryMatch {
                query: QueryId(1),
                new_embeddings: 3,
                retracted_embeddings: 3,
            }
        );
        assert_eq!(merged.total_embeddings(), 4);
        assert_eq!(merged.total_retracted(), 5);

        // Zero-count retraction pairs are dropped like their insert twins.
        assert!(MatchReport::from_retraction_counts(vec![(QueryId(0), 0)]).is_empty());
    }

    #[test]
    fn zero_count_pairs_never_split_merges() {
        // Pins the order-robustness of the fold-by-key implementation: one
        // merged entry per query regardless of where zero-count pairs land
        // in the input or the sort order, with zero-total queries dropped.
        let r = MatchReport::from_counts(vec![(QueryId(5), 2), (QueryId(5), 0), (QueryId(5), 3)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.matches[0].query, QueryId(5));
        assert_eq!(r.matches[0].new_embeddings, 5);

        // Zero pairs of *other* queries interleaved in the input must not
        // split merges either, and must themselves be dropped.
        let r = MatchReport::from_counts(vec![
            (QueryId(2), 1),
            (QueryId(1), 0),
            (QueryId(2), 4),
            (QueryId(3), 0),
            (QueryId(2), 0),
        ]);
        assert_eq!(r.satisfied_queries(), vec![QueryId(2)]);
        assert_eq!(r.matches[0].new_embeddings, 5);
        assert_eq!(r.total_embeddings(), 5);
    }
}
