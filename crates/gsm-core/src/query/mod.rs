//! The continuous query model (Section 3.2) and the covering-path
//! decomposition used at query-indexing time (Section 4.1, Step 1).

pub mod classes;
pub mod paths;
pub mod pattern;
