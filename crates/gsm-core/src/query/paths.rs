//! Covering-path extraction (Section 4.1, Step 1 of the paper).
//!
//! A query graph pattern is decomposed into a set of directed paths that
//! together cover every vertex and every edge of the pattern (Definition 4.2).
//! The paper solves this greedily: repeatedly start a depth-first walk at some
//! vertex and follow unvisited outgoing edges until no progress can be made,
//! until all edges (and therefore all vertices) are covered; finally drop
//! paths that are sub-paths of other paths.

use crate::memory::HeapSize;
use crate::query::pattern::{QVertexId, QueryPattern};

/// A covering path: an ordered list of pattern-edge indices such that the
/// target vertex of each edge is the source vertex of the next.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CoveringPath {
    /// Indices into [`QueryPattern::edges`] in walk order.
    pub edges: Vec<usize>,
}

impl CoveringPath {
    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the path contains no edges (never produced by extraction).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The vertex sequence visited by the path: `len() + 1` query-vertex ids,
    /// starting at the source of the first edge.
    pub fn vertex_sequence(&self, query: &QueryPattern) -> Vec<QVertexId> {
        let mut seq = Vec::with_capacity(self.edges.len() + 1);
        if let Some(&first) = self.edges.first() {
            seq.push(query.edge_endpoints(first).0);
        }
        for &e in &self.edges {
            seq.push(query.edge_endpoints(e).1);
        }
        seq
    }

    /// True if `self`'s edge sequence occurs contiguously inside `other`.
    pub fn is_subpath_of(&self, other: &CoveringPath) -> bool {
        if self.edges.len() > other.edges.len() {
            return false;
        }
        if self.edges.is_empty() {
            return true;
        }
        other
            .edges
            .windows(self.edges.len())
            .any(|w| w == self.edges.as_slice())
    }
}

impl HeapSize for CoveringPath {
    fn heap_size(&self) -> usize {
        self.edges.heap_size()
    }
}

/// Extracts a set of covering paths for `query` with the greedy strategy of
/// the paper.
///
/// Guarantees (checked by unit and property tests):
/// * every edge of the query appears on at least one path;
/// * every vertex of the query appears on at least one path;
/// * consecutive edges on a path share the intermediate vertex;
/// * no returned path is a sub-path of another returned path.
pub fn covering_paths(query: &QueryPattern) -> Vec<CoveringPath> {
    let num_edges = query.num_edges();
    let mut edge_used = vec![false; num_edges];
    let mut paths: Vec<CoveringPath> = Vec::new();

    // Pre-compute outgoing edge lists per vertex for the walks.
    let out_of: Vec<Vec<usize>> = (0..query.num_vertices())
        .map(|v| query.out_edges_of(v))
        .collect();

    // Start vertices are considered in a deterministic order that prefers
    // "source-like" vertices (no incoming edges) so chains start at their
    // head, as in the paper's walkthrough examples.
    let mut start_order: Vec<QVertexId> = (0..query.num_vertices()).collect();
    start_order.sort_by_key(|&v| (query.in_edges_of(v).len(), v));

    while edge_used.iter().any(|used| !used) {
        // Pick the first start vertex that still has an unvisited outgoing edge.
        let start = start_order
            .iter()
            .copied()
            .find(|&v| out_of[v].iter().any(|&e| !edge_used[e]));
        let Some(start) = start else {
            // No vertex has an unvisited outgoing edge, yet unvisited edges
            // remain — impossible, every edge leaves some vertex.
            unreachable!("unvisited edge without a start vertex");
        };

        let mut current = start;
        let mut walk: Vec<usize> = Vec::new();
        loop {
            // Prefer an unvisited edge leading to a vertex we have not yet
            // visited on this walk (depth-first flavour), falling back to any
            // unvisited outgoing edge.
            let candidates: Vec<usize> = out_of[current]
                .iter()
                .copied()
                .filter(|&e| !edge_used[e])
                .collect();
            if candidates.is_empty() {
                break;
            }
            let visited_on_walk: Vec<QVertexId> = if walk.is_empty() {
                vec![current]
            } else {
                let mut seq = vec![query.edge_endpoints(walk[0]).0];
                seq.extend(walk.iter().map(|&e| query.edge_endpoints(e).1));
                seq
            };
            let chosen = candidates
                .iter()
                .copied()
                .find(|&e| !visited_on_walk.contains(&query.edge_endpoints(e).1))
                .unwrap_or(candidates[0]);
            edge_used[chosen] = true;
            walk.push(chosen);
            current = query.edge_endpoints(chosen).1;
        }
        debug_assert!(!walk.is_empty());
        paths.push(CoveringPath { edges: walk });
    }

    // Drop paths that are sub-paths of other paths (cannot occur with the
    // "unvisited edges only" strategy, but kept for faithfulness to the
    // paper's description and as a safety net).
    let mut kept: Vec<CoveringPath> = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        let redundant = paths
            .iter()
            .enumerate()
            .any(|(j, q)| i != j && p.is_subpath_of(q) && (p.len() < q.len() || i > j));
        if !redundant {
            kept.push(p.clone());
        }
    }
    kept
}

/// Checks that a set of paths covers every vertex and edge of `query` and
/// that every path is structurally consistent. Used by tests and debug
/// assertions in the engines.
pub fn is_valid_cover(query: &QueryPattern, paths: &[CoveringPath]) -> bool {
    let mut edge_covered = vec![false; query.num_edges()];
    let mut vertex_covered = vec![false; query.num_vertices()];
    for p in paths {
        if p.is_empty() {
            return false;
        }
        // Consecutive edges must chain on the shared vertex.
        for w in p.edges.windows(2) {
            if query.edge_endpoints(w[0]).1 != query.edge_endpoints(w[1]).0 {
                return false;
            }
        }
        for &e in &p.edges {
            if e >= query.num_edges() {
                return false;
            }
            edge_covered[e] = true;
            let (s, t) = query.edge_endpoints(e);
            vertex_covered[s] = true;
            vertex_covered[t] = true;
        }
    }
    edge_covered.into_iter().all(|c| c) && vertex_covered.into_iter().all(|c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::SymbolTable;

    fn parse(text: &str) -> QueryPattern {
        let mut s = SymbolTable::new();
        QueryPattern::parse(text, &mut s).unwrap()
    }

    #[test]
    fn chain_is_covered_by_one_path() {
        let q = parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?d");
        let paths = covering_paths(&q);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
        assert!(is_valid_cover(&q, &paths));
    }

    #[test]
    fn out_star_needs_one_path_per_leaf() {
        let q = parse("?c -a-> ?x; ?c -b-> ?y; ?c -c-> ?z");
        let paths = covering_paths(&q);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 1));
        assert!(is_valid_cover(&q, &paths));
    }

    #[test]
    fn in_star_needs_one_path_per_leaf() {
        let q = parse("?x -a-> ?c; ?y -b-> ?c; ?z -c-> ?c");
        let paths = covering_paths(&q);
        assert_eq!(paths.len(), 3);
        assert!(is_valid_cover(&q, &paths));
    }

    #[test]
    fn cycle_is_covered() {
        let q = parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a");
        let paths = covering_paths(&q);
        assert!(is_valid_cover(&q, &paths));
        // A directed cycle can be walked as a single open path.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn paper_example_query_q1() {
        // Q1 of Fig. 4: ?f1 -hasMod-> ?p1; ?p1 -posted-> pst1;
        //               ?p1 -posted-> pst2; ?com1? (reply) -> pst2
        let q =
            parse("?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; ?p1 -posted-> pst2; ?com1 -reply-> pst2");
        let paths = covering_paths(&q);
        assert!(is_valid_cover(&q, &paths));
        // The paper extracts three covering paths for Q1.
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn paper_example_query_q4() {
        let q = parse("?f1 -hasMod-> ?p1; ?p1 -posted-> pst1; pst1 -containedIn-> ?fo");
        let paths = covering_paths(&q);
        assert!(is_valid_cover(&q, &paths));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
    }

    #[test]
    fn vertex_sequence_chains_correctly() {
        let q = parse("?a -x-> ?b; ?b -y-> ?c");
        let paths = covering_paths(&q);
        assert_eq!(paths.len(), 1);
        let seq = paths[0].vertex_sequence(&q);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], q.edge_endpoints(paths[0].edges[0]).0);
    }

    #[test]
    fn no_path_is_subpath_of_another() {
        let q = parse("?a -x-> ?b; ?b -y-> ?c; ?a -z-> ?c; ?c -w-> ?d");
        let paths = covering_paths(&q);
        assert!(is_valid_cover(&q, &paths));
        for (i, p) in paths.iter().enumerate() {
            for (j, other) in paths.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subpath_of(other) || p.len() == other.len());
                }
            }
        }
    }

    #[test]
    fn self_loop_query() {
        let q = parse("?a -follows-> ?a");
        let paths = covering_paths(&q);
        assert!(is_valid_cover(&q, &paths));
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn subpath_detection() {
        let a = CoveringPath { edges: vec![1, 2] };
        let b = CoveringPath {
            edges: vec![0, 1, 2, 3],
        };
        let c = CoveringPath { edges: vec![2, 1] };
        assert!(a.is_subpath_of(&b));
        assert!(!c.is_subpath_of(&b));
        assert!(!b.is_subpath_of(&a));
    }
}
