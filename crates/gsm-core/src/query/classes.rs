//! Structural query classes.
//!
//! The paper's query workload mixes three classes that are typical in the
//! literature — chains, stars and cycles (Section 6.1). This module detects
//! the class of an arbitrary pattern; the workload generator uses the same
//! taxonomy when synthesising query sets.

use crate::query::pattern::QueryPattern;

/// Structural shape of a query graph pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// A simple directed path `v0 → v1 → … → vk` with all vertices distinct.
    Chain,
    /// A single centre vertex connected to otherwise-unconnected leaves
    /// (edges may point either way).
    Star,
    /// A simple directed cycle.
    Cycle,
    /// A connected acyclic pattern that is neither a chain nor a star.
    Tree,
    /// Anything else.
    General,
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QueryClass::Chain => "chain",
            QueryClass::Star => "star",
            QueryClass::Cycle => "cycle",
            QueryClass::Tree => "tree",
            QueryClass::General => "general",
        };
        write!(f, "{s}")
    }
}

/// Classifies a query pattern.
pub fn classify(query: &QueryPattern) -> QueryClass {
    let n = query.num_vertices();
    let m = query.num_edges();

    let total_degree = |v: usize| query.out_edges_of(v).len() + query.in_edges_of(v).len();

    // Single self-loop counts as a cycle of length one.
    if m == 1 {
        let (s, t) = query.edge_endpoints(0);
        return if s == t {
            QueryClass::Cycle
        } else {
            QueryClass::Chain
        };
    }

    // Simple directed cycle: every vertex has out-degree 1 and in-degree 1,
    // and #edges == #vertices.
    if m == n && (0..n).all(|v| query.out_edges_of(v).len() == 1 && query.in_edges_of(v).len() == 1)
    {
        return QueryClass::Cycle;
    }

    // Chain: m == n - 1, exactly two endpoints of total degree 1, everything
    // else total degree 2, and the edges orient head-to-tail.
    if m + 1 == n {
        let deg1 = (0..n).filter(|&v| total_degree(v) == 1).count();
        let deg2 = (0..n).filter(|&v| total_degree(v) == 2).count();
        if deg1 == 2 && deg2 == n - 2 {
            let directed_chain =
                (0..n).all(|v| query.out_edges_of(v).len() <= 1 && query.in_edges_of(v).len() <= 1);
            if directed_chain {
                return QueryClass::Chain;
            }
        }
        // Star: one centre with total degree m, all leaves with degree 1.
        let centre = (0..n).find(|&v| total_degree(v) == m);
        if let Some(c) = centre {
            let leaves_ok = (0..n).filter(|&v| v != c).all(|v| total_degree(v) == 1);
            if leaves_ok {
                return QueryClass::Star;
            }
        }
        return QueryClass::Tree;
    }

    QueryClass::General
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::SymbolTable;

    fn parse(text: &str) -> QueryPattern {
        let mut s = SymbolTable::new();
        QueryPattern::parse(text, &mut s).unwrap()
    }

    #[test]
    fn single_edge_is_chain() {
        assert_eq!(classify(&parse("?a -x-> ?b")), QueryClass::Chain);
    }

    #[test]
    fn self_loop_is_cycle() {
        assert_eq!(classify(&parse("?a -x-> ?a")), QueryClass::Cycle);
    }

    #[test]
    fn directed_path_is_chain() {
        assert_eq!(
            classify(&parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?d")),
            QueryClass::Chain
        );
    }

    #[test]
    fn zigzag_path_is_not_a_directed_chain() {
        // a -> b <- c is undirected-path shaped but not a directed chain; with
        // only two edges it coincides with an in-star centred at b.
        assert_eq!(classify(&parse("?a -x-> ?b; ?c -y-> ?b")), QueryClass::Star);
    }

    #[test]
    fn out_star_and_in_star() {
        assert_eq!(
            classify(&parse("?c -a-> ?x; ?c -b-> ?y; ?c -c-> ?z")),
            QueryClass::Star
        );
        assert_eq!(
            classify(&parse("?x -a-> ?c; ?y -b-> ?c; ?z -c-> ?c")),
            QueryClass::Star
        );
    }

    #[test]
    fn mixed_star() {
        assert_eq!(
            classify(&parse("?c -a-> ?x; ?y -b-> ?c; ?c -c-> ?z")),
            QueryClass::Star
        );
    }

    #[test]
    fn triangle_is_cycle() {
        assert_eq!(
            classify(&parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a")),
            QueryClass::Cycle
        );
    }

    #[test]
    fn chord_makes_general() {
        assert_eq!(
            classify(&parse("?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a; ?a -w-> ?c")),
            QueryClass::General
        );
    }

    #[test]
    fn deep_tree() {
        assert_eq!(
            classify(&parse("?a -x-> ?b; ?b -y-> ?c; ?b -z-> ?d; ?d -w-> ?e")),
            QueryClass::Tree
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(QueryClass::Chain.to_string(), "chain");
        assert_eq!(QueryClass::General.to_string(), "general");
    }

    #[test]
    fn two_cycle_is_cycle() {
        assert_eq!(
            classify(&parse("?a -x-> ?b; ?b -y-> ?a")),
            QueryClass::Cycle
        );
    }
}
