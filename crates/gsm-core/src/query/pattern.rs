//! Query graph patterns.
//!
//! A [`QueryPattern`] is a directed labeled multigraph whose vertices are
//! [`Term`]s — constants or variables (Definition 3.4). Patterns must be
//! non-empty and weakly connected; anything else is rejected at construction
//! time so that engines never have to deal with degenerate inputs.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::interner::{Sym, SymbolTable};
use crate::memory::HeapSize;
use crate::model::term::{PatternEdge, Term, VarId};

/// Index of a query vertex inside a [`QueryPattern`] (dense, 0-based).
pub type QVertexId = usize;

/// A validated query graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    edges: Vec<PatternEdge>,
    /// Distinct terms in first-occurrence order; position = [`QVertexId`].
    vertices: Vec<Term>,
    /// Reverse map term → vertex id.
    vertex_ids: HashMap<Term, QVertexId>,
    /// Per-edge endpoint vertex ids, aligned with `edges`.
    endpoints: Vec<(QVertexId, QVertexId)>,
}

impl QueryPattern {
    /// Builds a pattern from a list of edges, validating it.
    ///
    /// # Errors
    /// Returns [`Error::EmptyQuery`] for an empty edge list and
    /// [`Error::DisconnectedQuery`] if the pattern is not weakly connected.
    pub fn from_edges(edges: Vec<PatternEdge>) -> Result<Self> {
        if edges.is_empty() {
            return Err(Error::EmptyQuery);
        }
        let mut vertices: Vec<Term> = Vec::new();
        let mut vertex_ids: HashMap<Term, QVertexId> = HashMap::new();
        let mut endpoints = Vec::with_capacity(edges.len());
        for e in &edges {
            let mut id_of = |t: Term| -> QVertexId {
                *vertex_ids.entry(t).or_insert_with(|| {
                    vertices.push(t);
                    vertices.len() - 1
                })
            };
            let s = id_of(e.src);
            let t = id_of(e.tgt);
            endpoints.push((s, t));
        }
        let pattern = QueryPattern {
            edges,
            vertices,
            vertex_ids,
            endpoints,
        };
        if !pattern.is_weakly_connected() {
            return Err(Error::DisconnectedQuery);
        }
        Ok(pattern)
    }

    /// Parses a pattern from a compact textual syntax.
    ///
    /// Each edge is written `src -label-> tgt`, edges are separated by `;` or
    /// newlines, variables start with `?`, everything else is a constant that
    /// is interned into `symbols`.
    ///
    /// ```
    /// # use gsm_core::prelude::*;
    /// let mut symbols = SymbolTable::new();
    /// let q = QueryPattern::parse(
    ///     "?u -shares-> ?post; ?post -links-> flagged_domain",
    ///     &mut symbols,
    /// ).unwrap();
    /// assert_eq!(q.num_edges(), 2);
    /// assert_eq!(q.num_vertices(), 3);
    /// ```
    pub fn parse(text: &str, symbols: &mut SymbolTable) -> Result<Self> {
        let mut edges = Vec::new();
        let mut vars: HashMap<String, VarId> = HashMap::new();
        let term = |tok: &str,
                    symbols: &mut SymbolTable,
                    vars: &mut HashMap<String, VarId>|
         -> Result<Term> {
            if tok.is_empty() {
                return Err(Error::Parse("empty vertex token".into()));
            }
            if let Some(name) = tok.strip_prefix('?') {
                if name.is_empty() {
                    return Err(Error::Parse("variable with empty name".into()));
                }
                let next = vars.len() as VarId;
                Ok(Term::Var(*vars.entry(name.to_string()).or_insert(next)))
            } else {
                Ok(Term::Const(symbols.intern(tok)))
            }
        };
        for raw in text.split([';', '\n']) {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            // Expected form: "<src> -<label>-> <tgt>"
            let open = line
                .find('-')
                .ok_or_else(|| Error::Parse(format!("missing '-label->' in `{line}`")))?;
            let close = line
                .find("->")
                .ok_or_else(|| Error::Parse(format!("missing `->` in `{line}`")))?;
            if close <= open {
                return Err(Error::Parse(format!("malformed edge `{line}`")));
            }
            let src_tok = line[..open].trim();
            let label_tok = line[open + 1..close].trim();
            let tgt_tok = line[close + 2..].trim();
            if label_tok.is_empty() {
                return Err(Error::Parse(format!("empty edge label in `{line}`")));
            }
            let src = term(src_tok, symbols, &mut vars)?;
            let tgt = term(tgt_tok, symbols, &mut vars)?;
            edges.push(PatternEdge::new(symbols.intern(label_tok), src, tgt));
        }
        Self::from_edges(edges)
    }

    /// The pattern's edges in declaration order.
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// The pattern's distinct vertices (terms) in first-occurrence order.
    pub fn vertices(&self) -> &[Term] {
        &self.vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The vertex id of a term, if the term occurs in the pattern.
    pub fn vertex_id(&self, term: &Term) -> Option<QVertexId> {
        self.vertex_ids.get(term).copied()
    }

    /// The `(source, target)` vertex ids of edge `edge_idx`.
    pub fn edge_endpoints(&self, edge_idx: usize) -> (QVertexId, QVertexId) {
        self.endpoints[edge_idx]
    }

    /// Edge indices whose source is `v`.
    pub fn out_edges_of(&self, v: QVertexId) -> Vec<usize> {
        self.endpoints
            .iter()
            .enumerate()
            .filter(|(_, (s, _))| *s == v)
            .map(|(i, _)| i)
            .collect()
    }

    /// Edge indices whose target is `v`.
    pub fn in_edges_of(&self, v: QVertexId) -> Vec<usize> {
        self.endpoints
            .iter()
            .enumerate()
            .filter(|(_, (_, t))| *t == v)
            .map(|(i, _)| i)
            .collect()
    }

    /// All distinct variable ids used by the pattern.
    pub fn variables(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.vertices.iter().filter_map(|t| t.as_var()).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// All distinct constants used at vertex positions.
    pub fn constants(&self) -> Vec<Sym> {
        let mut consts: Vec<Sym> = self.vertices.iter().filter_map(|t| t.as_const()).collect();
        consts.sort_unstable();
        consts.dedup();
        consts
    }

    /// All distinct edge labels used by the pattern.
    pub fn labels(&self) -> Vec<Sym> {
        let mut labels: Vec<Sym> = self.edges.iter().map(|e| e.label).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    fn is_weakly_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, t) in &self.endpoints {
            adjacency[s].push(t);
            adjacency[t].push(s);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }
}

impl HeapSize for QueryPattern {
    fn heap_size(&self) -> usize {
        self.edges.heap_size()
            + self.vertices.heap_size()
            + self.vertex_ids.heap_size()
            + self.endpoints.heap_size()
    }
}

/// A fluent builder for query graph patterns, convenient in code (examples,
/// generators) where the textual syntax would be awkward.
#[derive(Debug, Default, Clone)]
pub struct QueryPatternBuilder {
    edges: Vec<PatternEdge>,
}

impl QueryPatternBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an edge.
    pub fn edge(mut self, label: Sym, src: Term, tgt: Term) -> Self {
        self.edges.push(PatternEdge::new(label, src, tgt));
        self
    }

    /// Adds an edge between two variables.
    pub fn var_edge(self, label: Sym, src: VarId, tgt: VarId) -> Self {
        self.edge(label, Term::Var(src), Term::Var(tgt))
    }

    /// Finalises the pattern.
    pub fn build(self) -> Result<QueryPattern> {
        QueryPattern::from_edges(self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn empty_pattern_is_rejected() {
        assert_eq!(QueryPattern::from_edges(vec![]), Err(Error::EmptyQuery));
    }

    #[test]
    fn disconnected_pattern_is_rejected() {
        let mut s = syms();
        let knows = s.intern("knows");
        let edges = vec![
            PatternEdge::new(knows, Term::Var(0), Term::Var(1)),
            PatternEdge::new(knows, Term::Var(2), Term::Var(3)),
        ];
        assert_eq!(
            QueryPattern::from_edges(edges),
            Err(Error::DisconnectedQuery)
        );
    }

    #[test]
    fn vertices_are_deduplicated() {
        let mut s = syms();
        let q = QueryPattern::parse("?a -x-> ?b; ?b -x-> ?c; ?a -y-> ?c", &mut s).unwrap();
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.variables().len(), 3);
    }

    #[test]
    fn constants_identify_vertices() {
        let mut s = syms();
        let q = QueryPattern::parse("?a -posted-> pst1; com1 -replyOf-> pst1", &mut s).unwrap();
        // pst1 appears twice but is a single query vertex.
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.constants().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_edges() {
        let mut s = syms();
        assert!(matches!(
            QueryPattern::parse("?a knows ?b", &mut s),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            QueryPattern::parse("?a --> ?b", &mut s),
            Err(Error::Parse(_))
        ));
        assert!(matches!(
            QueryPattern::parse("? -knows-> ?b", &mut s),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn parse_example_from_paper_figure_3() {
        // Two people who know each other check in at the same place in Rio.
        let mut s = syms();
        let q = QueryPattern::parse(
            "?p1 -knows-> ?p2; ?p1 -checksIn-> ?plc; ?p2 -checksIn-> ?plc; ?plc -locatedIn-> rio",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.num_edges(), 4);
        assert_eq!(q.num_vertices(), 4);
        assert_eq!(q.constants().len(), 1);
    }

    #[test]
    fn endpoints_and_adjacency_queries() {
        let mut s = syms();
        let q = QueryPattern::parse("?a -x-> ?b; ?a -y-> ?c", &mut s).unwrap();
        let a = q.vertex_id(&Term::Var(0)).unwrap();
        assert_eq!(q.out_edges_of(a).len(), 2);
        assert_eq!(q.in_edges_of(a).len(), 0);
        let (s0, t0) = q.edge_endpoints(0);
        assert_eq!(s0, a);
        assert_ne!(t0, a);
    }

    #[test]
    fn builder_matches_parser() {
        let mut s = syms();
        let knows = s.intern("knows");
        let built = QueryPatternBuilder::new()
            .var_edge(knows, 0, 1)
            .var_edge(knows, 1, 2)
            .build()
            .unwrap();
        let parsed = QueryPattern::parse("?a -knows-> ?b; ?b -knows-> ?c", &mut s).unwrap();
        assert_eq!(built.num_edges(), parsed.num_edges());
        assert_eq!(built.num_vertices(), parsed.num_vertices());
    }

    #[test]
    fn self_loop_pattern_is_valid() {
        let mut s = syms();
        let q = QueryPattern::parse("?a -follows-> ?a", &mut s).unwrap();
        assert_eq!(q.num_vertices(), 1);
        assert_eq!(q.num_edges(), 1);
    }
}
