//! Error types shared across the workspace.

use std::fmt;

/// Convenience result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, parsing or registering query graph patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query graph pattern contains no edges.
    EmptyQuery,
    /// The query graph pattern is not weakly connected.
    DisconnectedQuery,
    /// The textual pattern could not be parsed; the payload explains why.
    Parse(String),
    /// A query identifier was used that the engine does not know about.
    UnknownQuery(u32),
    /// A query was registered twice with the same identifier.
    DuplicateQuery(u32),
    /// The engine configuration is invalid (e.g. a zero-sized budget).
    InvalidConfig(String),
    /// `register_query` was called while staged batch tokens were still
    /// outstanding; the payload is the number of outstanding tokens.
    /// Registration may restructure the tries and views a deferred answer
    /// pass joins against, so the staged window must be drained first (see
    /// the staging contract on
    /// [`crate::engine::ContinuousEngine::stage_batch`]).
    RegistrationWhileStaged(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyQuery => write!(f, "query graph pattern has no edges"),
            Error::DisconnectedQuery => {
                write!(f, "query graph pattern must be weakly connected")
            }
            Error::Parse(msg) => write!(f, "failed to parse query pattern: {msg}"),
            Error::UnknownQuery(id) => write!(f, "unknown query identifier {id}"),
            Error::DuplicateQuery(id) => write!(f, "query identifier {id} already registered"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::RegistrationWhileStaged(n) => write!(
                f,
                "register_query with {n} staged batch token(s) outstanding; \
                 drain the staged window first"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            Error::EmptyQuery.to_string(),
            "query graph pattern has no edges"
        );
        assert!(Error::Parse("bad arrow".into())
            .to_string()
            .contains("bad arrow"));
        assert!(Error::UnknownQuery(7).to_string().contains('7'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::EmptyQuery, Error::EmptyQuery);
        assert_ne!(Error::EmptyQuery, Error::DisconnectedQuery);
    }
}
