//! Error types shared across the workspace.

use std::fmt;

/// Convenience result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, parsing or registering query graph patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query graph pattern contains no edges.
    EmptyQuery,
    /// The query graph pattern is not weakly connected.
    DisconnectedQuery,
    /// The textual pattern could not be parsed; the payload explains why.
    Parse(String),
    /// A query identifier was used that the engine does not know about.
    UnknownQuery(u32),
    /// A query was registered twice with the same identifier.
    DuplicateQuery(u32),
    /// The engine configuration is invalid (e.g. a zero-sized budget).
    InvalidConfig(String),
    /// `register_query` was called while staged batch tokens were still
    /// outstanding; the payload is the number of outstanding tokens.
    /// Registration may restructure the tries and views a deferred answer
    /// pass joins against, so the staged window must be drained first (see
    /// the staging contract on
    /// [`crate::engine::ContinuousEngine::stage_batch`]).
    RegistrationWhileStaged(usize),
    /// The engine does not implement
    /// [`crate::engine::ContinuousEngine::unregister_query`]; the payload is
    /// the engine's name. Every production engine in this workspace supports
    /// unregistration — this is the trait default for toy and
    /// special-purpose engines that opt out of the dynamic query lifecycle.
    UnsupportedUnregister(&'static str),
    /// A durable-storage operation (write-ahead log append, fsync,
    /// checkpoint write, recovery read) failed or found corrupt data. The
    /// fields locate the failure: the storage path it happened on, the byte
    /// offset within that storage, and a human-readable detail. Persistence
    /// layers must surface this variant instead of panicking or silently
    /// dropping data; a WAL reader hitting a torn tail is *not* an error
    /// (recovery truncates and continues), but a failing backend is.
    Persistence {
        /// Path (or backend label) of the storage the failure occurred on.
        path: String,
        /// Byte offset within the storage at which the failure occurred.
        offset: u64,
        /// Human-readable failure description.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyQuery => write!(f, "query graph pattern has no edges"),
            Error::DisconnectedQuery => {
                write!(f, "query graph pattern must be weakly connected")
            }
            Error::Parse(msg) => write!(f, "failed to parse query pattern: {msg}"),
            Error::UnknownQuery(id) => write!(f, "unknown query identifier {id}"),
            Error::DuplicateQuery(id) => write!(f, "query identifier {id} already registered"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::RegistrationWhileStaged(n) => write!(
                f,
                "register_query with {n} staged batch token(s) outstanding; \
                 drain the staged window first"
            ),
            Error::UnsupportedUnregister(engine) => {
                write!(f, "engine {engine} does not support unregister_query")
            }
            Error::Persistence {
                path,
                offset,
                detail,
            } => write!(f, "persistence failure at {path}+{offset}: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            Error::EmptyQuery.to_string(),
            "query graph pattern has no edges"
        );
        assert!(Error::Parse("bad arrow".into())
            .to_string()
            .contains("bad arrow"));
        assert!(Error::UnknownQuery(7).to_string().contains('7'));
    }

    #[test]
    fn persistence_error_carries_path_and_offset() {
        let e = Error::Persistence {
            path: "/tmp/wal-0.log".into(),
            offset: 4096,
            detail: "short write: 12 of 64 bytes".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("/tmp/wal-0.log"), "{msg}");
        assert!(msg.contains("4096"), "{msg}");
        assert!(msg.contains("short write"), "{msg}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::EmptyQuery, Error::EmptyQuery);
        assert_ne!(Error::EmptyQuery, Error::DisconnectedQuery);
    }
}
