//! End-to-end smoke tests: real sockets against an ephemeral-port
//! server, covering the subscription lifecycle, multi-client routing,
//! error replies, the connection cap and slow-consumer/disconnect
//! cancellation.

use std::time::Duration;

use gsm_core::{ContinuousEngine, PipelineConfig, ShardedEngine};
use gsm_server::{Client, ClientError, Server, ServerConfig};
use gsm_tric::TricEngine;

fn quick_config() -> ServerConfig {
    ServerConfig {
        pipeline: PipelineConfig::new(4, Duration::from_millis(1)),
        max_conns: 4,
        outbound_queue: 64,
        idle_poll: Duration::from_millis(1),
    }
}

fn start(config: ServerConfig) -> Server {
    let engine: Box<dyn ContinuousEngine + Send> = Box::new(TricEngine::tric_plus());
    Server::bind("127.0.0.1:0", engine, config).expect("bind ephemeral port")
}

#[test]
fn register_push_notify_unregister_round_trip() {
    let server = start(quick_config());
    let mut client = Client::connect(server.local_addr()).unwrap();

    client.ping().unwrap();
    let (id, live_epoch) = client.register("?u -likes-> ?p").unwrap();
    assert_eq!(id, 0);
    assert!(live_epoch >= 1);
    // Pin the boundary: the registration is live from here on.
    client.flush().unwrap();

    // Two matching edges, one boundary: the totals arrive before the
    // flush reply.
    client
        .push(&[(false, "likes", "u1", "p1"), (false, "likes", "u2", "p1")])
        .unwrap();
    client.flush().unwrap();
    let totals = client.notification_totals();
    assert_eq!(totals.get(&id), Some(&(2, 0)));

    // Retraction notifies too.
    client.push(&[(true, "likes", "u1", "p1")]).unwrap();
    client.flush().unwrap();
    assert_eq!(client.notification_totals().get(&id), Some(&(0, 1)));

    // Unregister mid-stream: the reply succeeds, and edges pushed after
    // the boundary no longer notify.
    client.unregister(id).unwrap();
    client.flush().unwrap();
    client.take_notifications();
    client.push(&[(false, "likes", "u9", "p9")]).unwrap();
    client.flush().unwrap();
    assert!(client.take_notifications().is_empty());

    // The id is gone: a second unregister is an error reply, not a hang.
    match client.unregister(id) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not owned"), "got {msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
}

#[test]
fn notifications_route_to_the_owning_connection_only() {
    let server = start(quick_config());
    let mut alice = Client::connect(server.local_addr()).unwrap();
    let mut bob = Client::connect(server.local_addr()).unwrap();

    let (alice_q, _) = alice.register("?a -follows-> ?b").unwrap();
    let (bob_q, _) = bob.register("?x -blocks-> ?y").unwrap();
    assert_ne!(alice_q, bob_q);
    // Pin the boundary so both registrations are live before the push.
    bob.flush().unwrap();

    // Bob pushes edges matching both queries; each owner gets exactly
    // its own notification.
    bob.push(&[
        (false, "follows", "n1", "n2"),
        (false, "blocks", "n1", "n2"),
    ])
    .unwrap();
    bob.flush().unwrap();
    assert_eq!(bob.notification_totals().get(&bob_q), Some(&(1, 0)));

    let n = alice
        .recv_notification(Duration::from_secs(5))
        .unwrap()
        .expect("alice's notification");
    assert_eq!((n.id, n.new, n.retracted), (alice_q, 1, 0));
    assert!(alice
        .recv_notification(Duration::from_millis(50))
        .unwrap()
        .is_none());

    // Alice cannot unregister Bob's query.
    assert!(matches!(
        alice.unregister(bob_q),
        Err(ClientError::Server(_))
    ));
}

#[test]
fn malformed_lines_get_error_replies_not_disconnects() {
    let server = start(quick_config());
    let mut client = Client::connect(server.local_addr()).unwrap();

    for bad in [
        "this is not json",
        r#"{"op":"warp"}"#,
        r#"{"op":"push","edges":[["*","l","a","b"]]}"#,
    ] {
        client.send_raw(bad).unwrap();
        let (op, ok, body) = client.read_reply().unwrap();
        assert_eq!(op, "error");
        assert!(!ok);
        assert!(body.get("error").is_some(), "error reply for {bad}");
    }
    // A bad pattern is an op-level error.
    match client.register("no arrow here") {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected server error, got {other:?}"),
    }
    // The connection survived all of it.
    client.ping().unwrap();
}

#[test]
fn connection_cap_rejects_with_a_full_hello() {
    let mut config = quick_config();
    config.max_conns = 2;
    let server = start(config);

    let _a = Client::connect(server.local_addr()).unwrap();
    let _b = Client::connect(server.local_addr()).unwrap();
    match Client::connect(server.local_addr()) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("connection limit"), "got {msg}"),
        Err(other) => panic!("expected a full-server hello, got {other:?}"),
        Ok(_) => panic!("expected a full-server hello, got an admitted connection"),
    }

    // Dropping one admitted client frees a slot (the reader job exit
    // releases the counter; poll briefly for it).
    drop(_a);
    let mut admitted = None;
    for _ in 0..100 {
        match Client::connect(server.local_addr()) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    admitted
        .expect("slot freed after disconnect")
        .ping()
        .unwrap();
}

#[test]
fn disconnect_cancels_the_subscriptions() {
    let server = start(quick_config());
    let mut alice = Client::connect(server.local_addr()).unwrap();
    let mut bob = Client::connect(server.local_addr()).unwrap();

    let (bob_q, _) = bob.register("?x -pings-> ?y").unwrap();
    drop(bob);

    // Bob's query is unregistered at the next boundary; the engine's
    // live count drops back to Alice's none. Poll: the disconnect
    // command races with our next request.
    let mut live = usize::MAX;
    for _ in 0..200 {
        let stats = alice.stats().unwrap();
        live = stats.get("queries").unwrap().as_u64().unwrap() as usize;
        if live == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        live, 0,
        "query {bob_q} should be unregistered on disconnect"
    );

    // New registrations never reuse Bob's id.
    let (alice_q, _) = alice.register("?x -pings-> ?y").unwrap();
    assert!(alice_q > bob_q);
}

#[test]
fn sharded_engine_behind_the_server_matches_too() {
    let engine: Box<dyn ContinuousEngine + Send> =
        Box::new(ShardedEngine::new(2, TricEngine::tric_plus));
    let server = Server::bind("127.0.0.1:0", engine, quick_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (id, _) = client.register("?u -likes-> ?p; ?p -by-> ?a").unwrap();
    client.flush().unwrap();
    client
        .push(&[(false, "likes", "u1", "p1"), (false, "by", "p1", "a1")])
        .unwrap();
    client.flush().unwrap();
    assert_eq!(client.notification_totals().get(&id), Some(&(1, 0)));
}
