//! The blocking TCP server: accept loop, per-connection reader/writer
//! jobs on a [`WorkerPool`], and a single engine thread that owns the
//! [`PipelinedEngine`] and the subscription routing table.
//!
//! # Threading model
//!
//! No async runtime is available offline, so the server is built from
//! blocking sockets on the existing worker-pool substrate:
//!
//! - an **accept thread** enforces the connection cap and hands each
//!   admitted socket a reader job and a writer job on the shared pool
//!   (sized `2 × max_conns + 2`, so every live connection always has
//!   both of its jobs running);
//! - **reader jobs** block on `read_line`, decode one request per line
//!   and forward it to the engine thread over an mpsc channel;
//! - **writer jobs** drain a *bounded* per-connection outbound queue to
//!   the socket — the engine thread enqueues with `try_send`, and a full
//!   queue marks the consumer as too slow (see below);
//! - the **engine thread** owns the pipeline, the symbol table and the
//!   `query id → connection` routing table. It is the only thread that
//!   touches the engine, so no engine state is ever locked.
//!
//! # Backpressure and slow consumers
//!
//! Every frame to a client — replies and notifications alike — goes
//! through that client's bounded queue. When `try_send` finds the queue
//! full (or the writer already gone), the server drops the connection
//! rather than stall the pipeline for everyone else: the connection's
//! queue is closed (which ends the writer and, via socket shutdown, the
//! reader) and all queries it owns are queued for unregistration at the
//! next epoch boundary. A disconnect — deliberate or not — therefore
//! cancels the client's subscriptions without barriering the pipeline.
//!
//! # Epoch boundaries
//!
//! `register`/`unregister` are *queued* on the pipeline
//! ([`PipelinedEngine::queue_register`]) and take effect at the next
//! drain boundary: an explicit `flush`, or the idle tick (no request for
//! `idle_poll`) when work is pending. Mid-stream lifecycle requests
//! therefore never fail with a staged-window error, and a freshly
//! registered query observes exactly the edges pushed after the boundary
//! that activated it.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gsm_core::{
    ContinuousEngine, PipelineConfig, PipelinedEngine, QueryId, QueryPattern, SymbolTable, Update,
    WorkerPool,
};

use crate::json::{num, Json};
use crate::protocol::{notify, reply_err, reply_ok, EdgeOp, Request};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pipeline configuration for the wrapped engine.
    pub pipeline: PipelineConfig,
    /// Maximum concurrently connected clients; extra connections are
    /// greeted with an `ok:false` hello and closed.
    pub max_conns: usize,
    /// Per-connection outbound queue depth (frames). A client that lets
    /// this fill up is disconnected as a slow consumer.
    pub outbound_queue: usize,
    /// How long the engine thread waits for a request before it runs an
    /// idle tick (drain pending batches, apply queued lifecycle ops).
    pub idle_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pipeline: PipelineConfig::default(),
            max_conns: 32,
            outbound_queue: 1024,
            idle_poll: Duration::from_millis(2),
        }
    }
}

/// Commands flowing from the accept/reader threads to the engine thread.
enum Command {
    /// A new connection was admitted; `tx` feeds its writer job.
    Connect { conn: u64, tx: SyncSender<String> },
    /// One decoded request (or a decode error to report back).
    Request {
        conn: u64,
        req: Result<Request, String>,
    },
    /// The connection's reader saw EOF or an error.
    Disconnect { conn: u64 },
    /// Stop the engine thread and close every connection.
    Shutdown,
}

/// A running server; dropping it shuts the server down.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    cmd_tx: Sender<Command>,
    accept_thread: Option<JoinHandle<()>>,
    engine_thread: Option<JoinHandle<()>>,
    // Dropped last: joining the pool requires every reader/writer job to
    // have exited, which the shutdown sequence guarantees.
    _pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `engine` behind a pipeline built from `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Box<dyn ContinuousEngine + Send>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(WorkerPool::new(2 * config.max_conns + 2));
        let (cmd_tx, cmd_rx) = mpsc::channel();

        let engine_thread = {
            let config = config.clone();
            std::thread::Builder::new()
                .name("gsm-engine".into())
                .spawn(move || EngineThread::new(engine, config).run(cmd_rx))?
        };

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let cmd_tx = cmd_tx.clone();
            let pool_handle = Arc::clone(&pool);
            let config = config.clone();
            std::thread::Builder::new()
                .name("gsm-accept".into())
                .spawn(move || accept_loop(listener, shutdown, cmd_tx, pool_handle, config))?
        };

        Ok(Server {
            local_addr,
            shutdown,
            cmd_tx,
            accept_thread: Some(accept_thread),
            engine_thread: Some(engine_thread),
            _pool: pool,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, closes every connection and joins all threads.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Closing every connection first lets the reader/writer jobs
        // exit; the engine thread stops once it sees Shutdown.
        let _ = self.cmd_tx.send(Command::Shutdown);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    cmd_tx: Sender<Command>,
    pool: Arc<WorkerPool>,
    config: ServerConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut next_conn: u64 = 0;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Frames are small and latency-sensitive; never Nagle-delay them.
        let _ = stream.set_nodelay(true);
        // Connection cap: greet-and-close when full. The counter is
        // released by the reader job on its way out.
        if active.load(Ordering::SeqCst) >= config.max_conns {
            let mut stream = stream;
            let hello = reply_err("hello", "connection limit reached");
            let _ = writeln!(stream, "{hello}");
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let conn = next_conn;
        next_conn += 1;

        let (out_tx, out_rx) = mpsc::sync_channel::<String>(config.outbound_queue);
        // The hello goes through the outbound queue *before* the engine
        // learns about the connection, so it is always the first frame.
        let _ = out_tx.try_send(reply_ok("hello", vec![("conn", num(conn))]));
        if cmd_tx.send(Command::Connect { conn, tx: out_tx }).is_err() {
            // Engine already gone (shutdown race); drop the socket.
            active.fetch_sub(1, Ordering::SeqCst);
            continue;
        }

        let reader = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                let _ = cmd_tx.send(Command::Disconnect { conn });
                active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
        };
        let writer = stream;

        pool.execute({
            let cmd_tx = cmd_tx.clone();
            let active = Arc::clone(&active);
            move || {
                reader_job(reader, conn, &cmd_tx);
                active.fetch_sub(1, Ordering::SeqCst);
            }
        });
        pool.execute(move || writer_job(writer, out_rx));
    }
}

/// Reads `\n`-framed requests until EOF/error, forwarding each to the
/// engine thread. Always announces the disconnect on the way out.
fn reader_job(stream: TcpStream, conn: u64, cmd_tx: &Sender<Command>) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let req = Request::decode(trimmed);
                if cmd_tx.send(Command::Request { conn, req }).is_err() {
                    break;
                }
            }
        }
    }
    let _ = cmd_tx.send(Command::Disconnect { conn });
}

/// Drains the bounded outbound queue to the socket. Exits when the
/// engine drops the queue (disconnect) or the socket dies, and shuts the
/// socket down so the blocked reader job exits too.
fn writer_job(mut stream: TcpStream, out_rx: Receiver<String>) {
    for frame in out_rx.iter() {
        if writeln!(stream, "{frame}").is_err() || stream.flush().is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection state owned by the engine thread.
struct ConnState {
    tx: SyncSender<String>,
    /// Query ids this connection registered and still owns.
    queries: Vec<u32>,
}

/// The engine thread: single owner of the pipeline and routing table.
struct EngineThread {
    pipe: PipelinedEngine<Box<dyn ContinuousEngine + Send>>,
    symbols: SymbolTable,
    conns: HashMap<u64, ConnState>,
    /// Routes notifications: query id → owning connection.
    owners: HashMap<u32, u64>,
    /// Queries whose unregistration is queued; their `owners` entries are
    /// pruned after the boundary that applies it (they may still emit
    /// notifications for pre-boundary batches until then).
    retiring: Vec<u32>,
    idle_poll: Duration,
}

impl EngineThread {
    fn new(engine: Box<dyn ContinuousEngine + Send>, config: ServerConfig) -> EngineThread {
        EngineThread {
            pipe: PipelinedEngine::new(engine, config.pipeline),
            symbols: SymbolTable::new(),
            conns: HashMap::new(),
            owners: HashMap::new(),
            retiring: Vec::new(),
            idle_poll: config.idle_poll,
        }
    }

    fn run(mut self, cmd_rx: Receiver<Command>) {
        loop {
            match cmd_rx.recv_timeout(self.idle_poll) {
                Ok(Command::Connect { conn, tx }) => {
                    self.conns.insert(
                        conn,
                        ConnState {
                            tx,
                            queries: Vec::new(),
                        },
                    );
                }
                Ok(Command::Request { conn, req }) => match req {
                    Ok(req) => self.handle_request(conn, req),
                    Err(error) => self.send(conn, reply_err("error", &error)),
                },
                Ok(Command::Disconnect { conn }) => self.drop_conn(conn),
                Ok(Command::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => self.idle_tick(),
            }
        }
        // Dropping the outbound queues ends every writer job, which
        // shuts each socket down and thereby ends its reader job.
        self.conns.clear();
    }

    /// Idle for a poll interval: drain so deadline-expired batches are
    /// answered, queued lifecycle ops apply, and notifications go out
    /// even when no client is actively pushing.
    fn idle_tick(&mut self) {
        if self.pipe.buffered() > 0
            || self.pipe.in_flight() > 0
            || self.pipe.pending_lifecycle() > 0
        {
            self.boundary();
        }
    }

    /// Runs a full drain (an epoch boundary), dispatches everything it
    /// completed, and prunes routing entries for unregistered queries.
    fn boundary(&mut self) {
        let done = self.pipe.drain();
        self.dispatch(done);
        for qid in std::mem::take(&mut self.retiring) {
            debug_assert!(!self.pipe.is_registered(QueryId(qid)));
            if let Some(conn) = self.owners.remove(&qid) {
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.queries.retain(|&q| q != qid);
                }
            }
        }
    }

    fn handle_request(&mut self, conn: u64, req: Request) {
        let op = req.op_name();
        match req {
            Request::Register { query } => match QueryPattern::parse(&query, &mut self.symbols) {
                Ok(pattern) => {
                    let id = self.pipe.queue_register(&pattern);
                    let live_epoch = self.pipe.epoch() + 1;
                    self.owners.insert(id.0, conn);
                    if let Some(state) = self.conns.get_mut(&conn) {
                        state.queries.push(id.0);
                    }
                    self.send(
                        conn,
                        reply_ok(
                            op,
                            vec![("id", num(id.0 as u64)), ("epoch", num(live_epoch))],
                        ),
                    );
                }
                Err(e) => self.send(conn, reply_err(op, &e.to_string())),
            },
            Request::Unregister { id } => {
                if self.owners.get(&id) != Some(&conn) {
                    self.send(
                        conn,
                        reply_err(op, &format!("query {id} not owned by this connection")),
                    );
                    return;
                }
                match self.pipe.queue_unregister(QueryId(id)) {
                    Ok(()) => {
                        let gone_epoch = self.pipe.epoch() + 1;
                        self.retiring.push(id);
                        self.send(
                            conn,
                            reply_ok(op, vec![("id", num(id as u64)), ("epoch", num(gone_epoch))]),
                        );
                    }
                    Err(e) => self.send(conn, reply_err(op, &e.to_string())),
                }
            }
            Request::Push { edges } => {
                let accepted = edges.len() as u64;
                let now = Instant::now();
                let mut done = Vec::new();
                for edge in edges {
                    let update = self.decode_update(&edge);
                    done.extend(self.pipe.push_at(update, now));
                }
                // Notifications for batches this push completed precede
                // the push reply on each connection's queue.
                self.dispatch(done);
                self.send(conn, reply_ok(op, vec![("accepted", num(accepted))]));
            }
            Request::Flush => {
                self.boundary();
                self.send(conn, reply_ok(op, vec![("epoch", num(self.pipe.epoch()))]));
            }
            Request::Stats => {
                let stats = self.pipe.stats();
                self.send(
                    conn,
                    reply_ok(
                        op,
                        vec![
                            ("engine", Json::Str(self.pipe.name().into())),
                            ("queries", num(self.pipe.num_queries() as u64)),
                            ("epoch", num(self.pipe.epoch())),
                            ("updates", num(stats.updates_processed)),
                            ("notifications", num(stats.notifications)),
                            ("embeddings", num(stats.embeddings)),
                            ("retracted", num(stats.retracted)),
                        ],
                    ),
                );
            }
            Request::Ping => self.send(conn, reply_ok(op, vec![])),
        }
    }

    fn decode_update(&mut self, edge: &EdgeOp) -> Update {
        let label = self.symbols.intern(&edge.label);
        let src = self.symbols.intern(&edge.src);
        let tgt = self.symbols.intern(&edge.tgt);
        if edge.retract {
            Update::retraction(label, src, tgt)
        } else {
            Update::new(label, src, tgt)
        }
    }

    /// Routes each completed batch's per-query reports to the owning
    /// connections.
    fn dispatch(&mut self, done: Vec<gsm_core::CompletedBatch>) {
        for batch in done {
            for m in batch.report.matches {
                if let Some(&conn) = self.owners.get(&m.query.0) {
                    self.send(
                        conn,
                        notify(m.query.0, m.new_embeddings, m.retracted_embeddings),
                    );
                }
            }
        }
    }

    /// Enqueues one frame; a full or closed queue drops the connection
    /// (slow-consumer policy).
    fn send(&mut self, conn: u64, frame: String) {
        let Some(state) = self.conns.get(&conn) else {
            return;
        };
        match state.tx.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.drop_conn(conn);
            }
        }
    }

    /// Closes a connection: its outbound queue is dropped (ending the
    /// writer, then the reader via socket shutdown) and every query it
    /// still owns is queued for unregistration at the next boundary.
    fn drop_conn(&mut self, conn: u64) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        for qid in state.queries {
            if self.owners.get(&qid) == Some(&conn)
                && self.pipe.queue_unregister(QueryId(qid)).is_ok()
            {
                self.retiring.push(qid);
            }
            self.owners.remove(&qid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The slow-consumer policy, exercised without kernel socket buffers
    /// in the way: a connection whose bounded queue is full (nothing
    /// draining it) is dropped on the next frame, and the queries it
    /// owns are cancelled at the following epoch boundary.
    #[test]
    fn overflowing_outbound_queue_drops_the_connection_and_cancels_its_queries() {
        let engine: Box<dyn ContinuousEngine + Send> = Box::new(gsm_tric::TricEngine::tric_plus());
        let config = ServerConfig {
            pipeline: PipelineConfig::new(1, Duration::ZERO),
            ..ServerConfig::default()
        };
        let mut et = EngineThread::new(engine, config);

        let (tx, rx) = mpsc::sync_channel(1);
        et.conns.insert(
            7,
            ConnState {
                tx,
                queries: Vec::new(),
            },
        );

        // The register reply fills the queue (capacity 1, no writer).
        et.handle_request(
            7,
            Request::Register {
                query: "?a -l-> ?b".into(),
            },
        );
        assert!(et.conns.contains_key(&7));
        assert_eq!(et.owners.get(&0), Some(&7));

        // The next frame overflows: slow-consumer disconnect.
        et.handle_request(7, Request::Ping);
        assert!(!et.conns.contains_key(&7), "slow consumer must be dropped");
        drop(rx);

        // Its queued registration is cancelled at the boundary; the
        // engine ends up with no live queries and no routing entries.
        et.boundary();
        assert_eq!(et.pipe.num_queries(), 0);
        assert!(et.owners.is_empty());
        assert!(et.retiring.is_empty());
    }
}
