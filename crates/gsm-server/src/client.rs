//! A blocking line-framed client, used by the tests, the benches and
//! anything that wants to talk to a [`crate::server::Server`] without
//! hand-rolling the framing.
//!
//! Notifications are interleaved with replies on the wire; the client
//! buffers any notification that arrives while it is waiting for a
//! reply, and exposes the buffer through [`Client::take_notifications`]
//! and [`Client::recv_notification`].

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{EdgeOp, Request, ServerFrame};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes a server-side disconnect).
    Io(std::io::Error),
    /// A frame that did not decode.
    Protocol(String),
    /// The server answered `ok:false` with this message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A match notification as received from the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// The query id.
    pub id: u32,
    /// New embeddings in the completed batch.
    pub new: u64,
    /// Retracted embeddings in the completed batch.
    pub retracted: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    pending: Vec<Notification>,
    /// Partial line carried across a read timeout. `read_until` (unlike
    /// `read_line`) keeps already-consumed bytes in its buffer when the
    /// read errors mid-line, so a timeout never corrupts the framing.
    partial: Vec<u8>,
}

impl Client {
    /// Connects and consumes the server's hello frame; a full server
    /// (`ok:false` hello) surfaces as [`ClientError::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            writer: stream,
            reader,
            pending: Vec::new(),
            partial: Vec::new(),
        };
        client.expect_reply("hello")?;
        Ok(client)
    }

    /// Registers a pattern; returns `(query id, epoch at which it is
    /// live)`.
    pub fn register(&mut self, query: &str) -> Result<(u32, u64), ClientError> {
        let body = self.call(Request::Register {
            query: query.to_string(),
        })?;
        Ok((field(&body, "id")? as u32, field(&body, "epoch")?))
    }

    /// Unregisters a query this connection owns; returns the epoch at
    /// which it stops matching.
    pub fn unregister(&mut self, id: u32) -> Result<u64, ClientError> {
        let body = self.call(Request::Unregister { id })?;
        field(&body, "epoch")
    }

    /// Pushes signed edges: `(retract?, label, src, tgt)`.
    pub fn push(&mut self, edges: &[(bool, &str, &str, &str)]) -> Result<u64, ClientError> {
        let edges = edges
            .iter()
            .map(|&(retract, label, src, tgt)| EdgeOp {
                retract,
                label: label.to_string(),
                src: src.to_string(),
                tgt: tgt.to_string(),
            })
            .collect();
        let body = self.call(Request::Push { edges })?;
        field(&body, "accepted")
    }

    /// Forces an epoch boundary; when the reply arrives, every
    /// notification from batches completed before the boundary has
    /// already been received (same ordered queue).
    pub fn flush(&mut self) -> Result<u64, ClientError> {
        let body = self.call(Request::Flush)?;
        field(&body, "epoch")
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Request::Ping).map(|_| ())
    }

    /// Engine statistics, as raw reply fields.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Request::Stats)
    }

    /// Notifications buffered so far (drains the buffer). Does not read
    /// from the socket.
    pub fn take_notifications(&mut self) -> Vec<Notification> {
        std::mem::take(&mut self.pending)
    }

    /// Blocks up to `timeout` for one notification (buffered ones are
    /// returned first). `Ok(None)` on timeout.
    pub fn recv_notification(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Notification>, ClientError> {
        if !self.pending.is_empty() {
            return Ok(Some(self.pending.remove(0)));
        }
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = match self.read_frame() {
            Ok(ServerFrame::Notify { id, new, retracted }) => {
                Ok(Some(Notification { id, new, retracted }))
            }
            Ok(ServerFrame::Reply { op, .. }) => Err(ClientError::Protocol(format!(
                "unexpected `{op}` reply while waiting for notifications"
            ))),
            Err(ClientError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.reader.get_ref().set_read_timeout(None)?;
        result
    }

    /// Sums buffered notifications into per-query `(new, retracted)`
    /// totals. Call [`Client::flush`] first to pin a boundary.
    pub fn notification_totals(&mut self) -> BTreeMap<u32, (u64, u64)> {
        let mut totals: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for n in self.take_notifications() {
            let entry = totals.entry(n.id).or_default();
            entry.0 += n.new;
            entry.1 += n.retracted;
        }
        totals
    }

    /// Sends one raw line (no newline needed); test hook for malformed
    /// input.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next reply frame, buffering notifications that arrive
    /// first; test hook paired with [`Client::send_raw`].
    pub fn read_reply(&mut self) -> Result<(String, bool, Json), ClientError> {
        loop {
            match self.read_frame()? {
                ServerFrame::Notify { id, new, retracted } => {
                    self.pending.push(Notification { id, new, retracted });
                }
                ServerFrame::Reply { op, ok, body } => return Ok((op, ok, body)),
            }
        }
    }

    fn call(&mut self, req: Request) -> Result<Json, ClientError> {
        let expect = req.op_name();
        self.send_raw(&req.encode())?;
        self.expect_reply(expect)
    }

    fn expect_reply(&mut self, expect: &str) -> Result<Json, ClientError> {
        let (op, ok, body) = self.read_reply()?;
        if op != expect {
            return Err(ClientError::Protocol(format!(
                "expected `{expect}` reply, got `{op}`"
            )));
        }
        if !ok {
            let msg = body
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(ClientError::Server(msg.to_string()));
        }
        Ok(body)
    }

    fn read_frame(&mut self) -> Result<ServerFrame, ClientError> {
        loop {
            let n = self.reader.read_until(b'\n', &mut self.partial)?;
            if n == 0 && self.partial.is_empty() {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            if self.partial.last() != Some(&b'\n') && n > 0 {
                // EOF cut the line short; the next read settles it.
                continue;
            }
            let line = std::mem::take(&mut self.partial);
            let text = String::from_utf8(line)
                .map_err(|e| ClientError::Protocol(format!("non-UTF-8 frame: {e}")))?;
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            return ServerFrame::decode(trimmed).map_err(ClientError::Protocol);
        }
    }
}

fn field(body: &Json, key: &str) -> Result<u64, ClientError> {
    body.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Protocol(format!("reply missing integer `{key}`")))
}
