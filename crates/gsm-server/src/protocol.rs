//! The line-framed wire protocol: one JSON object per `\n`-terminated
//! line, in both directions.
//!
//! # Requests (client → server)
//!
//! ```json
//! {"op":"register","query":"?u -likes-> ?p; ?p -by-> ?a"}
//! {"op":"unregister","id":3}
//! {"op":"push","edges":[["+","likes","u1","p1"],["-","likes","u1","p1"]]}
//! {"op":"flush"}
//! {"op":"stats"}
//! {"op":"ping"}
//! ```
//!
//! # Replies and notifications (server → client)
//!
//! Every request gets exactly one reply frame `{"reply":"<op>","ok":…}`,
//! in request order. Interleaved with replies, the server pushes one
//! notification frame per (completed batch × matched query) the
//! connection owns:
//!
//! ```json
//! {"reply":"register","ok":true,"id":3,"epoch":7}
//! {"reply":"register","ok":false,"error":"missing '-label->' in `x`"}
//! {"notify":true,"id":3,"new":2,"retracted":0}
//! ```
//!
//! `epoch` in the `register`/`unregister` replies is the epoch at which
//! the lifecycle change takes effect: the operation is queued and applied
//! at the next pipeline drain boundary, so edges pushed before that
//! boundary are never seen by a newly registered query.

use crate::json::{self, num, obj, Json};

/// One edge operation inside a `push` request: `["+"|"-", label, src, tgt]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeOp {
    /// True for a retraction (`"-"`), false for an insertion (`"+"`).
    pub retract: bool,
    /// Edge label.
    pub label: String,
    /// Source vertex.
    pub src: String,
    /// Target vertex.
    pub tgt: String,
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a pattern (compact `src -label-> tgt; …` syntax); queued
    /// until the next epoch boundary.
    Register {
        /// Pattern text.
        query: String,
    },
    /// Unregister a query this connection owns; queued until the next
    /// epoch boundary.
    Unregister {
        /// The id the `register` reply handed out.
        id: u32,
    },
    /// Append signed edge operations to the shared stream.
    Push {
        /// The edge operations, in order.
        edges: Vec<EdgeOp>,
    },
    /// Force a full pipeline drain (an epoch boundary): all buffered
    /// edges are answered and all queued lifecycle operations applied
    /// before the reply is sent.
    Flush,
    /// Engine statistics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Decodes one request line. Errors are protocol violations the
    /// server answers with an `ok:false` reply.
    pub fn decode(line: &str) -> Result<Request, String> {
        let frame = json::parse(line)?;
        let op = frame
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string `op` field")?;
        match op {
            "register" => {
                let query = frame
                    .get("query")
                    .and_then(Json::as_str)
                    .ok_or("register needs a string `query` field")?;
                Ok(Request::Register {
                    query: query.to_string(),
                })
            }
            "unregister" => {
                let id = frame
                    .get("id")
                    .and_then(Json::as_u64)
                    .filter(|&id| id <= u32::MAX as u64)
                    .ok_or("unregister needs an integer `id` field")?;
                Ok(Request::Unregister { id: id as u32 })
            }
            "push" => {
                let edges = frame
                    .get("edges")
                    .and_then(Json::as_arr)
                    .ok_or("push needs an array `edges` field")?;
                let mut decoded = Vec::with_capacity(edges.len());
                for edge in edges {
                    decoded.push(decode_edge(edge)?);
                }
                Ok(Request::Push { edges: decoded })
            }
            "flush" => Ok(Request::Flush),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Encodes the request as a wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let frame = match self {
            Request::Register { query } => obj(vec![
                ("op", Json::Str("register".into())),
                ("query", Json::Str(query.clone())),
            ]),
            Request::Unregister { id } => obj(vec![
                ("op", Json::Str("unregister".into())),
                ("id", num(*id as u64)),
            ]),
            Request::Push { edges } => {
                let encoded = edges
                    .iter()
                    .map(|e| {
                        Json::Arr(vec![
                            Json::Str(if e.retract { "-" } else { "+" }.into()),
                            Json::Str(e.label.clone()),
                            Json::Str(e.src.clone()),
                            Json::Str(e.tgt.clone()),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("op", Json::Str("push".into())),
                    ("edges", Json::Arr(encoded)),
                ])
            }
            Request::Flush => obj(vec![("op", Json::Str("flush".into()))]),
            Request::Stats => obj(vec![("op", Json::Str("stats".into()))]),
            Request::Ping => obj(vec![("op", Json::Str("ping".into()))]),
        };
        frame.to_string()
    }

    /// The `reply` tag for this request's answer frame.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Unregister { .. } => "unregister",
            Request::Push { .. } => "push",
            Request::Flush => "flush",
            Request::Stats => "stats",
            Request::Ping => "ping",
        }
    }
}

fn decode_edge(edge: &Json) -> Result<EdgeOp, String> {
    let parts = edge.as_arr().ok_or("edge must be an array")?;
    if parts.len() != 4 {
        return Err(format!(
            "edge must be [sign, label, src, tgt], got {} elements",
            parts.len()
        ));
    }
    let text = |i: usize, what: &str| -> Result<String, String> {
        parts[i]
            .as_str()
            .map(str::to_string)
            .ok_or(format!("edge {what} must be a string"))
    };
    let retract = match text(0, "sign")?.as_str() {
        "+" => false,
        "-" => true,
        other => return Err(format!("edge sign must be `+` or `-`, got `{other}`")),
    };
    Ok(EdgeOp {
        retract,
        label: text(1, "label")?,
        src: text(2, "src")?,
        tgt: text(3, "tgt")?,
    })
}

/// Builds a success reply frame, with extra fields appended after `ok`.
pub fn reply_ok(op: &str, extra: Vec<(&str, Json)>) -> String {
    let mut members = vec![("reply", Json::Str(op.into())), ("ok", Json::Bool(true))];
    members.extend(extra);
    obj(members).to_string()
}

/// Builds an error reply frame.
pub fn reply_err(op: &str, error: &str) -> String {
    obj(vec![
        ("reply", Json::Str(op.into())),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(error.into())),
    ])
    .to_string()
}

/// Builds a per-query match notification frame.
pub fn notify(id: u32, new: u64, retracted: u64) -> String {
    obj(vec![
        ("notify", Json::Bool(true)),
        ("id", num(id as u64)),
        ("new", num(new)),
        ("retracted", num(retracted)),
    ])
    .to_string()
}

/// A decoded server → client frame, as seen by [`crate::client::Client`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// The reply to one request.
    Reply {
        /// Which op this answers.
        op: String,
        /// Success flag.
        ok: bool,
        /// The full frame, for op-specific fields (`id`, `epoch`, …).
        body: Json,
    },
    /// An asynchronous match notification.
    Notify {
        /// The query id.
        id: u32,
        /// New embeddings reported for this batch.
        new: u64,
        /// Retracted embeddings reported for this batch.
        retracted: u64,
    },
}

impl ServerFrame {
    /// Decodes one server → client line.
    pub fn decode(line: &str) -> Result<ServerFrame, String> {
        let frame = json::parse(line)?;
        if frame.get("notify").and_then(Json::as_bool) == Some(true) {
            let field = |key: &str| {
                frame
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or(format!("notify missing integer `{key}`"))
            };
            return Ok(ServerFrame::Notify {
                id: field("id")? as u32,
                new: field("new")?,
                retracted: field("retracted")?,
            });
        }
        let op = frame
            .get("reply")
            .and_then(Json::as_str)
            .ok_or("frame is neither a reply nor a notification")?
            .to_string();
        let ok = frame
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("reply missing bool `ok`")?;
        Ok(ServerFrame::Reply {
            op,
            ok,
            body: frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let cases = vec![
            Request::Register {
                query: "?u -likes-> ?p".into(),
            },
            Request::Unregister { id: 7 },
            Request::Push {
                edges: vec![
                    EdgeOp {
                        retract: false,
                        label: "likes".into(),
                        src: "u1".into(),
                        tgt: "p1".into(),
                    },
                    EdgeOp {
                        retract: true,
                        label: "likes".into(),
                        src: "u1".into(),
                        tgt: "p1".into(),
                    },
                ],
            },
            Request::Flush,
            Request::Stats,
            Request::Ping,
        ];
        for case in cases {
            let line = case.encode();
            assert_eq!(Request::decode(&line).unwrap(), case, "round trip {line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{}", "missing string `op`"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"register"}"#, "string `query`"),
            (r#"{"op":"unregister","id":"x"}"#, "integer `id`"),
            (r#"{"op":"unregister","id":4294967296}"#, "integer `id`"),
            (r#"{"op":"push"}"#, "array `edges`"),
            (r#"{"op":"push","edges":[["likes","a","b"]]}"#, "3 elements"),
            (r#"{"op":"push","edges":[["*","l","a","b"]]}"#, "sign"),
            (
                r#"{"op":"push","edges":[["+","l","a",3]]}"#,
                "must be a string",
            ),
            ("not json", "invalid"),
        ] {
            let err = Request::decode(line).unwrap_err();
            assert!(
                err.contains(needle),
                "error for {line} was `{err}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn server_frames_decode_replies_and_notifications() {
        let reply = ServerFrame::decode(&reply_ok("register", vec![("id", num(3))])).unwrap();
        match reply {
            ServerFrame::Reply { op, ok, body } => {
                assert_eq!(op, "register");
                assert!(ok);
                assert_eq!(body.get("id").unwrap().as_u64(), Some(3));
            }
            other => panic!("expected reply, got {other:?}"),
        }
        let err = ServerFrame::decode(&reply_err("push", "bad edge")).unwrap();
        assert!(matches!(err, ServerFrame::Reply { ok: false, .. }));
        let n = ServerFrame::decode(&notify(5, 2, 1)).unwrap();
        assert_eq!(
            n,
            ServerFrame::Notify {
                id: 5,
                new: 2,
                retracted: 1
            }
        );
        assert!(ServerFrame::decode(r#"{"x":1}"#).is_err());
    }
}
