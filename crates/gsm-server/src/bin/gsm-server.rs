//! The `gsm-server` binary: serves a TRIC engine over the JSONL
//! protocol.
//!
//! ```text
//! gsm-server --listen 127.0.0.1:7878 [--engine tric+|tric] [--shards N]
//!            [--max-conns N] [--max-batch N] [--max-delay-ms N]
//!            [--answer-threads N] [--outbound-queue N]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use gsm_core::{ContinuousEngine, ShardedEngine};
use gsm_server::{Server, ServerConfig};
use gsm_tric::TricEngine;

struct Args {
    listen: String,
    engine: String,
    shards: usize,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7878".into(),
        engine: "tric+".into(),
        shards: 1,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--engine" => args.engine = value("--engine")?,
            "--shards" => args.shards = parse(&value("--shards")?)?,
            "--max-conns" => args.config.max_conns = parse(&value("--max-conns")?)?,
            "--max-batch" => args.config.pipeline.max_batch = parse(&value("--max-batch")?)?,
            "--max-delay-ms" => {
                args.config.pipeline.max_delay =
                    Duration::from_millis(parse(&value("--max-delay-ms")?)? as u64)
            }
            "--answer-threads" => {
                let n: usize = parse(&value("--answer-threads")?)?;
                args.config.pipeline.answer_thread = n > 0;
                args.config.pipeline.answer_workers = n.max(1);
            }
            "--outbound-queue" => args.config.outbound_queue = parse(&value("--outbound-queue")?)?,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse(text: &str) -> Result<usize, String> {
    text.parse().map_err(|_| format!("invalid number `{text}`"))
}

fn build_engine(name: &str, shards: usize) -> Result<Box<dyn ContinuousEngine + Send>, String> {
    let factory = match name {
        "tric" => TricEngine::tric,
        "tric+" | "tric_plus" => TricEngine::tric_plus,
        other => return Err(format!("unknown engine `{other}` (expected tric or tric+)")),
    };
    Ok(if shards > 1 {
        Box::new(ShardedEngine::new(shards, factory))
    } else {
        Box::new(factory())
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            eprintln!(
                "usage: gsm-server --listen ADDR [--engine tric+|tric] [--shards N] \
                 [--max-conns N] [--max-batch N] [--max-delay-ms N] [--answer-threads N] \
                 [--outbound-queue N]"
            );
            return ExitCode::from(2);
        }
    };
    let engine = match build_engine(&args.engine, args.shards) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(args.listen.as_str(), engine, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("gsm-server listening on {}", server.local_addr());
    // Serve until killed; the threads do all the work.
    loop {
        std::thread::park();
    }
}
