//! A minimal JSON value type with a recursive-descent parser and a
//! serializer, sufficient for the line-framed wire protocol.
//!
//! The offline build has no serde, so the protocol layer works directly
//! against this [`Json`] enum. Numbers are kept as `f64` — every count the
//! protocol carries (query ids, embedding totals) fits exactly below
//! 2^53, and [`Json::as_u64`] rejects anything that does not round-trip.

use std::fmt::Write as _;

/// A parsed JSON value. Object members preserve insertion order, which
/// keeps serialized frames deterministic (handy for the differential
/// tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is a number that
    /// round-trips through `f64` without loss.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to single-line JSON (no added whitespace), so a frame is
/// always exactly one line on the wire.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half next.
                            *pos += 1;
                            if bytes.get(*pos) != Some(&b'\\') {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 1;
                            if bytes.get(*pos) != Some(&b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through unmodified).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
    *pos = end - 1;
    Ok(code)
}

/// Convenience constructor for an object from key/value pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Convenience constructor for a number from an unsigned integer.
pub fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_the_serializer() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"42"#,
            r#"-7"#,
            r#""hi there""#,
            r#"["a",1,false,null]"#,
            r#"{"op":"push","edges":[["+","likes","u1","p1"]]}"#,
            r#"{"nested":{"a":[{"b":2}]}}"#,
        ];
        for case in cases {
            let parsed = parse(case).unwrap();
            assert_eq!(parsed.to_string(), case, "round trip of {case}");
            assert_eq!(parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn escapes_and_unicode_survive() {
        let parsed = parse(r#""line\nbreak \"quoted\" A 😀""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "line\nbreak \"quoted\" A 😀");
        let reparsed = parse(&parsed.to_string()).unwrap();
        assert_eq!(reparsed, parsed);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "[1]extra",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_check_types_and_exactness() {
        let v = parse(r#"{"n":3,"s":"x","b":true,"f":1.5,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
