//! A live-subscription front end for the continuous graph-stream
//! engines: clients connect over TCP, register and unregister sub-graph
//! queries at runtime, push signed edge batches, and receive per-query
//! match notifications as batches complete.
//!
//! The wire protocol is newline-delimited JSON ([`protocol`]); the
//! server ([`server::Server`]) runs blocking sockets over the
//! [`gsm_core::WorkerPool`] substrate — no async runtime — with a
//! single engine thread owning a [`gsm_core::PipelinedEngine`] whose
//! epoch-based lifecycle queue makes mid-stream `register`/`unregister`
//! safe. [`client::Client`] is the matching blocking client used by the
//! differential tests and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Notification};
pub use server::{Server, ServerConfig};
