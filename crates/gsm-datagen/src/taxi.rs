//! NYC-taxi-like trip stream.
//!
//! The paper's second dataset is the 2013 NYC taxi-ride trace used in the
//! DEBS 2015 Grand Challenge: ~160M rides with medallion, license, pickup and
//! drop-off location, time and fare information. This generator synthesises
//! an equivalent edge stream: every trip becomes a small star of edges around
//! a fresh `ride` vertex, with heavy-hitter pickup/drop-off zones (rides
//! concentrate in a few hot areas), a fixed fleet of medallions and drivers,
//! and low-cardinality payment/fare/hour attributes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::{GraphStream, Update};

/// Configuration of the taxi-trip generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaxiConfig {
    /// Target number of edge-addition updates.
    pub target_edges: usize,
    /// Size of the taxi fleet (medallions).
    pub num_medallions: usize,
    /// Number of licensed drivers.
    pub num_drivers: usize,
    /// Number of city zones (grid cells).
    pub num_zones: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxiConfig {
    fn default() -> Self {
        TaxiConfig {
            target_edges: 100_000,
            num_medallions: 2_000,
            num_drivers: 4_000,
            num_zones: 300,
            seed: 0x5EED_0002,
        }
    }
}

impl TaxiConfig {
    /// A configuration scaled to roughly `edges` updates.
    pub fn with_edges(edges: usize) -> Self {
        TaxiConfig {
            target_edges: edges,
            ..Default::default()
        }
    }
}

/// Edge labels of the taxi stream.
#[derive(Debug, Clone, Copy)]
pub struct TaxiVocabulary {
    /// ride → medallion.
    pub ride_by: Sym,
    /// ride → driver.
    pub driven_by: Sym,
    /// ride → zone where the passenger was picked up.
    pub pickup_at: Sym,
    /// ride → zone where the passenger was dropped off.
    pub dropoff_at: Sym,
    /// ride → payment type.
    pub paid_with: Sym,
    /// ride → hour-of-day bucket.
    pub during_hour: Sym,
    /// ride → fare bucket.
    pub fare_bucket: Sym,
}

impl TaxiVocabulary {
    /// Interns the vocabulary into `symbols`.
    pub fn intern(symbols: &mut SymbolTable) -> Self {
        TaxiVocabulary {
            ride_by: symbols.intern("rideBy"),
            driven_by: symbols.intern("drivenBy"),
            pickup_at: symbols.intern("pickupAt"),
            dropoff_at: symbols.intern("dropoffAt"),
            paid_with: symbols.intern("paidWith"),
            during_hour: symbols.intern("duringHour"),
            fare_bucket: symbols.intern("fareBucket"),
        }
    }
}

/// Skewed zone pick: a few hot zones (think Midtown) receive most trips.
fn pick_zone(rng: &mut SmallRng, zones: &[Sym]) -> Sym {
    let r: f64 = rng.gen::<f64>();
    let idx = ((r * r * r) * zones.len() as f64) as usize;
    zones[idx.min(zones.len() - 1)]
}

/// Generates a taxi-trip update stream.
pub fn generate(config: &TaxiConfig, symbols: &mut SymbolTable) -> GraphStream {
    let vocab = TaxiVocabulary::intern(symbols);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stream = GraphStream::new();

    let medallions: Vec<Sym> = (0..config.num_medallions.max(1))
        .map(|i| symbols.intern(&format!("medallion_{i}")))
        .collect();
    let drivers: Vec<Sym> = (0..config.num_drivers.max(1))
        .map(|i| symbols.intern(&format!("driver_{i}")))
        .collect();
    let zones: Vec<Sym> = (0..config.num_zones.max(1))
        .map(|i| symbols.intern(&format!("zone_{i}")))
        .collect();
    let payments: Vec<Sym> = ["cash", "card", "dispute", "no_charge"]
        .iter()
        .map(|p| symbols.intern(&format!("payment_{p}")))
        .collect();
    let hours: Vec<Sym> = (0..24)
        .map(|h| symbols.intern(&format!("hour_{h}")))
        .collect();
    let fares: Vec<Sym> = ["low", "medium", "high", "premium"]
        .iter()
        .map(|f| symbols.intern(&format!("fare_{f}")))
        .collect();

    let mut ride_no = 0usize;
    while stream.len() < config.target_edges {
        let ride = symbols.intern(&format!("ride_{ride_no}"));
        ride_no += 1;
        let medallion = medallions[rng.gen_range(0..medallions.len())];
        let driver = drivers[rng.gen_range(0..drivers.len())];
        let pickup = pick_zone(&mut rng, &zones);
        let dropoff = pick_zone(&mut rng, &zones);
        let payment = payments[rng.gen_range(0..payments.len())];
        let hour = hours[rng.gen_range(0..hours.len())];
        let fare = fares[rng.gen_range(0..fares.len())];

        stream.push(Update::new(vocab.ride_by, ride, medallion));
        stream.push(Update::new(vocab.driven_by, ride, driver));
        stream.push(Update::new(vocab.pickup_at, ride, pickup));
        stream.push(Update::new(vocab.dropoff_at, ride, dropoff));
        stream.push(Update::new(vocab.paid_with, ride, payment));
        stream.push(Update::new(vocab.during_hour, ride, hour));
        stream.push(Update::new(vocab.fare_bucket, ride, fare));
    }
    stream.truncate(config.target_edges);
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::model::graph::AttributeGraph;

    #[test]
    fn generates_requested_number_of_updates() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&TaxiConfig::with_edges(7_001), &mut symbols);
        assert_eq!(stream.len(), 7_001);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TaxiConfig::with_edges(3_000);
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        assert_eq!(generate(&cfg, &mut s1), generate(&cfg, &mut s2));
    }

    #[test]
    fn zones_are_heavy_hitters() {
        let mut symbols = SymbolTable::new();
        let cfg = TaxiConfig::with_edges(20_000);
        let stream = generate(&cfg, &mut symbols);
        let pickup = symbols.get("pickupAt").unwrap();
        let mut counts: std::collections::HashMap<Sym, usize> = std::collections::HashMap::new();
        for u in stream.iter().filter(|u| u.label == pickup) {
            *counts.entry(u.tgt).or_insert(0) += 1;
        }
        let total: usize = counts.values().sum();
        let max = counts.values().max().copied().unwrap_or(0);
        // The hottest zone should receive far more than a uniform share.
        assert!(max as f64 > 3.0 * total as f64 / cfg.num_zones as f64);
    }

    #[test]
    fn rides_form_stars() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&TaxiConfig::with_edges(7_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let ride0 = symbols.get("ride_0").unwrap();
        assert_eq!(graph.out_degree(ride0), 7);
        assert_eq!(graph.in_degree(ride0), 0);
    }

    #[test]
    fn vertex_edge_ratio_is_plausible() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&TaxiConfig::with_edges(50_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let ratio = graph.num_vertices() as f64 / graph.num_edges() as f64;
        // The paper's taxi graph has ~0.28 vertices per edge.
        assert!(ratio > 0.1 && ratio < 0.5, "ratio {ratio}");
    }
}
