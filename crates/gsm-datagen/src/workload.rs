//! Workload bundles: dataset stream + query set + symbol table.
//!
//! A [`Workload`] is everything a benchmark run needs, generated
//! deterministically from a [`WorkloadConfig`] that mirrors the paper's
//! experimental knobs (dataset, graph size `|GE|`, query-database size
//! `|QDB|`, average query size `l`, selectivity `σ`, overlap `o`).

use std::collections::{HashMap, HashSet, VecDeque};

use gsm_core::interner::SymbolTable;
use gsm_core::model::graph::AttributeGraph;
use gsm_core::model::update::{GraphStream, Update};
use gsm_core::query::pattern::QueryPattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::biogrid::{self, BioGridConfig};
use crate::querygen::{self, QueryGenConfig, QuerySetStats};
use crate::snb::{self, SnbConfig};
use crate::taxi::{self, TaxiConfig};

/// The three datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// LDBC Social Network Benchmark-like activity stream.
    Snb,
    /// NYC-taxi-like trip stream.
    Taxi,
    /// BioGRID-like protein-interaction stream (single label stress test).
    BioGrid,
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dataset::Snb => "SNB",
            Dataset::Taxi => "TAXI",
            Dataset::BioGrid => "BioGRID",
        };
        write!(f, "{s}")
    }
}

/// How the insert-only dataset stream is post-processed into the final
/// update stream — the windowed scenario variants of the evaluation
/// (taxi trips age out, social edges are retracted, interactions get
/// corrected).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamVariant {
    /// The paper's insert-only streams (the default).
    InsertOnly,
    /// Count-based sliding window: each edge is retracted `window` inserts
    /// after its latest insertion, so the live graph stays bounded by the
    /// window size. Matches the TTL semantics of the pipelined front end
    /// with a count-based clock.
    SlidingWindow {
        /// Window width in stream positions (clamped to ≥ 1).
        window: usize,
    },
    /// Random churn: before each insert, with probability `delete_ratio`, a
    /// uniformly chosen live edge is retracted first.
    RandomDeletions {
        /// Per-insert probability of a preceding retraction (clamped to
        /// `[0, 1]`).
        delete_ratio: f64,
    },
}

/// Workload generation parameters (the paper's baseline values are the
/// defaults: `l = 5`, `σ = 25%`, `o = 35%`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Which dataset to generate.
    pub dataset: Dataset,
    /// Number of stream updates (the final graph size `|GE|`).
    pub graph_edges: usize,
    /// Number of continuous queries (`|QDB|`).
    pub num_queries: usize,
    /// Average query size in edges (`l`).
    pub avg_query_size: usize,
    /// Fraction of queries eventually satisfied (`σ`).
    pub selectivity: f64,
    /// Query overlap factor (`o`).
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
    /// Post-processing of the insert stream into the final update stream.
    pub variant: StreamVariant,
}

impl WorkloadConfig {
    /// The paper's baseline configuration for a dataset, scaled to the given
    /// stream and query-set sizes.
    pub fn new(dataset: Dataset, graph_edges: usize, num_queries: usize) -> Self {
        WorkloadConfig {
            dataset,
            graph_edges,
            num_queries,
            avg_query_size: 5,
            selectivity: 0.25,
            overlap: 0.35,
            seed: 0xC0FFEE,
            variant: StreamVariant::InsertOnly,
        }
    }

    /// Returns a copy with a different average query size.
    pub fn with_query_size(mut self, l: usize) -> Self {
        self.avg_query_size = l;
        self
    }

    /// Returns a copy with a different selectivity.
    pub fn with_selectivity(mut self, sigma: f64) -> Self {
        self.selectivity = sigma;
        self
    }

    /// Returns a copy with a different overlap factor.
    pub fn with_overlap(mut self, o: f64) -> Self {
        self.overlap = o;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy whose stream retracts each edge `window` inserts
    /// after its latest insertion (see [`StreamVariant::SlidingWindow`]).
    pub fn with_sliding_window(mut self, window: usize) -> Self {
        self.variant = StreamVariant::SlidingWindow { window };
        self
    }

    /// Returns a copy whose stream randomly retracts live edges at the
    /// given per-insert probability (see
    /// [`StreamVariant::RandomDeletions`]).
    pub fn with_delete_ratio(mut self, delete_ratio: f64) -> Self {
        self.variant = StreamVariant::RandomDeletions { delete_ratio };
        self
    }
}

/// Interleaves count-based sliding-window retractions into an insert
/// stream: each edge is retracted `window` positions after its latest
/// insertion (re-insertion refreshes the deadline, exactly like the
/// pipelined front end's TTL). Trailing edges still inside the window when
/// the stream ends stay live — a sustained stream never fully drains.
pub fn windowed_stream(inserts: &[Update], window: usize) -> GraphStream {
    let window = window.max(1);
    let mut out: Vec<Update> = Vec::with_capacity(inserts.len() * 2);
    let mut live: HashMap<Update, usize> = HashMap::new();
    let mut expiry: VecDeque<(usize, Update)> = VecDeque::new();
    for (i, &u) in inserts.iter().enumerate() {
        while let Some(&(at, e)) = expiry.front() {
            if at + window > i {
                break;
            }
            expiry.pop_front();
            if live.get(&e) == Some(&at) {
                live.remove(&e);
                out.push(e.inverted());
            }
        }
        let e = u.edge();
        live.insert(e, i);
        expiry.push_back((i, e));
        out.push(u);
    }
    GraphStream::from_updates(out)
}

/// Interleaves random retractions into an insert stream: before each
/// insert, with probability `delete_ratio`, a uniformly chosen live edge is
/// retracted. Deterministic in `seed`.
pub fn deletion_stream(inserts: &[Update], delete_ratio: f64, seed: u64) -> GraphStream {
    let p = delete_ratio.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Update> = Vec::with_capacity(inserts.len() * 2);
    let mut live: Vec<Update> = Vec::new();
    let mut live_set: HashSet<Update> = HashSet::new();
    for &u in inserts {
        if !live.is_empty() && rng.gen_bool(p) {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            live_set.remove(&victim);
            out.push(victim.inverted());
        }
        let e = u.edge();
        if live_set.insert(e) {
            live.push(e);
        }
        out.push(u);
    }
    GraphStream::from_updates(out)
}

/// A fully generated workload.
#[derive(Debug)]
pub struct Workload {
    /// Human-readable name (dataset + key parameters).
    pub name: String,
    /// The symbol table all updates and queries are interned in.
    pub symbols: SymbolTable,
    /// The update stream.
    pub stream: GraphStream,
    /// The continuous query set.
    pub queries: Vec<QueryPattern>,
    /// Statistics of the generated query set.
    pub query_stats: QuerySetStats,
    /// The configuration the workload was generated from.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Generates a workload deterministically from its configuration.
    pub fn generate(config: WorkloadConfig) -> Self {
        let mut symbols = SymbolTable::new();
        let stream = match config.dataset {
            Dataset::Snb => snb::generate(
                &SnbConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
            Dataset::Taxi => taxi::generate(
                &TaxiConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
            Dataset::BioGrid => biogrid::generate(
                &BioGridConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
        };
        // Queries are generated against the union graph of the insert-only
        // base stream: a query is "eventually satisfied" when its pattern
        // appears at some point of the stream, whether or not the windowed
        // variant later retracts the witnessing edges.
        let graph = AttributeGraph::from_updates(stream.iter());
        let (queries, query_stats) = querygen::generate(
            &QueryGenConfig {
                count: config.num_queries,
                avg_size: config.avg_query_size,
                selectivity: config.selectivity,
                overlap: config.overlap,
                seed: config.seed ^ 0x9E37_79B9_7F4A_7C15,
                ..Default::default()
            },
            &graph,
            &mut symbols,
        );
        let stream = match config.variant {
            StreamVariant::InsertOnly => stream,
            StreamVariant::SlidingWindow { window } => windowed_stream(stream.as_slice(), window),
            StreamVariant::RandomDeletions { delete_ratio } => deletion_stream(
                stream.as_slice(),
                delete_ratio,
                config.seed ^ 0xD1CE_D1CE_D1CE_D1CE,
            ),
        };
        let suffix = match config.variant {
            StreamVariant::InsertOnly => String::new(),
            StreamVariant::SlidingWindow { window } => format!("-win{window}"),
            StreamVariant::RandomDeletions { delete_ratio } => {
                format!("-del{:.0}%", delete_ratio * 100.0)
            }
        };
        let name = format!(
            "{}-E{}-Q{}-l{}-s{:.0}%-o{:.0}%{}",
            config.dataset,
            config.graph_edges,
            config.num_queries,
            config.avg_query_size,
            config.selectivity * 100.0,
            config.overlap * 100.0,
            suffix,
        );
        Workload {
            name,
            symbols,
            stream,
            queries,
            query_stats,
            config,
        }
    }

    /// Number of updates in the stream.
    pub fn num_updates(&self) -> usize {
        self.stream.len()
    }

    /// Number of queries in the set.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_end_to_end() {
        for dataset in [Dataset::Snb, Dataset::Taxi, Dataset::BioGrid] {
            let w = Workload::generate(WorkloadConfig::new(dataset, 3_000, 50));
            assert_eq!(w.num_updates(), 3_000, "{dataset}");
            assert_eq!(w.num_queries(), 50, "{dataset}");
            assert!(!w.name.is_empty());
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_000, 30));
        let b = Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_000, 30));
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = WorkloadConfig::new(Dataset::Taxi, 1_000, 10)
            .with_query_size(3)
            .with_selectivity(0.5)
            .with_overlap(0.6)
            .with_seed(7);
        assert_eq!(cfg.avg_query_size, 3);
        assert!((cfg.selectivity - 0.5).abs() < f64::EPSILON);
        assert!((cfg.overlap - 0.6).abs() < f64::EPSILON);
        assert_eq!(cfg.seed, 7);
        let w = Workload::generate(cfg);
        assert_eq!(w.config.avg_query_size, 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::Snb.to_string(), "SNB");
        assert_eq!(Dataset::Taxi.to_string(), "TAXI");
        assert_eq!(Dataset::BioGrid.to_string(), "BioGRID");
    }

    #[test]
    fn sliding_window_variant_bounds_the_live_graph() {
        let w = Workload::generate(
            WorkloadConfig::new(Dataset::Taxi, 2_000, 10).with_sliding_window(64),
        );
        assert!(w.name.ends_with("-win64"));
        assert!(w.num_updates() > 2_000, "retractions interleaved");
        // Replay: the live edge count never exceeds the window, every
        // retraction targets a live edge, and the surviving set equals the
        // trailing window.
        let mut g = AttributeGraph::new();
        for &u in w.stream.iter() {
            if u.is_retraction() {
                assert!(g.remove(u), "retraction of a dead edge: {u:?}");
            } else {
                g.apply(u);
            }
            assert!(g.num_edges() <= 64, "window overflow: {}", g.num_edges());
        }
        assert!(g.num_edges() > 0, "trailing window stays live");
        assert_eq!(
            w.stream.iter().filter(|u| !u.is_retraction()).count(),
            2_000,
            "all base inserts survive the transformation"
        );
    }

    #[test]
    fn random_deletion_variant_only_retracts_live_edges() {
        let cfg = WorkloadConfig::new(Dataset::Snb, 1_500, 10).with_delete_ratio(0.3);
        let a = Workload::generate(cfg);
        let b = Workload::generate(cfg);
        assert_eq!(a.stream, b.stream, "variant must be deterministic");
        assert!(a.name.ends_with("-del30%"));
        let retractions = a.stream.iter().filter(|u| u.is_retraction()).count();
        assert!(retractions > 100, "churn actually happens: {retractions}");
        let mut g = AttributeGraph::new();
        for &u in a.stream.iter() {
            if u.is_retraction() {
                assert!(g.remove(u), "retraction of a dead edge: {u:?}");
            } else {
                g.apply(u);
            }
        }
    }
}
