//! Workload bundles: dataset stream + query set + symbol table.
//!
//! A [`Workload`] is everything a benchmark run needs, generated
//! deterministically from a [`WorkloadConfig`] that mirrors the paper's
//! experimental knobs (dataset, graph size `|GE|`, query-database size
//! `|QDB|`, average query size `l`, selectivity `σ`, overlap `o`).

use gsm_core::interner::SymbolTable;
use gsm_core::model::graph::AttributeGraph;
use gsm_core::model::update::GraphStream;
use gsm_core::query::pattern::QueryPattern;

use crate::biogrid::{self, BioGridConfig};
use crate::querygen::{self, QueryGenConfig, QuerySetStats};
use crate::snb::{self, SnbConfig};
use crate::taxi::{self, TaxiConfig};

/// The three datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// LDBC Social Network Benchmark-like activity stream.
    Snb,
    /// NYC-taxi-like trip stream.
    Taxi,
    /// BioGRID-like protein-interaction stream (single label stress test).
    BioGrid,
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dataset::Snb => "SNB",
            Dataset::Taxi => "TAXI",
            Dataset::BioGrid => "BioGRID",
        };
        write!(f, "{s}")
    }
}

/// Workload generation parameters (the paper's baseline values are the
/// defaults: `l = 5`, `σ = 25%`, `o = 35%`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Which dataset to generate.
    pub dataset: Dataset,
    /// Number of stream updates (the final graph size `|GE|`).
    pub graph_edges: usize,
    /// Number of continuous queries (`|QDB|`).
    pub num_queries: usize,
    /// Average query size in edges (`l`).
    pub avg_query_size: usize,
    /// Fraction of queries eventually satisfied (`σ`).
    pub selectivity: f64,
    /// Query overlap factor (`o`).
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's baseline configuration for a dataset, scaled to the given
    /// stream and query-set sizes.
    pub fn new(dataset: Dataset, graph_edges: usize, num_queries: usize) -> Self {
        WorkloadConfig {
            dataset,
            graph_edges,
            num_queries,
            avg_query_size: 5,
            selectivity: 0.25,
            overlap: 0.35,
            seed: 0xC0FFEE,
        }
    }

    /// Returns a copy with a different average query size.
    pub fn with_query_size(mut self, l: usize) -> Self {
        self.avg_query_size = l;
        self
    }

    /// Returns a copy with a different selectivity.
    pub fn with_selectivity(mut self, sigma: f64) -> Self {
        self.selectivity = sigma;
        self
    }

    /// Returns a copy with a different overlap factor.
    pub fn with_overlap(mut self, o: f64) -> Self {
        self.overlap = o;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fully generated workload.
#[derive(Debug)]
pub struct Workload {
    /// Human-readable name (dataset + key parameters).
    pub name: String,
    /// The symbol table all updates and queries are interned in.
    pub symbols: SymbolTable,
    /// The update stream.
    pub stream: GraphStream,
    /// The continuous query set.
    pub queries: Vec<QueryPattern>,
    /// Statistics of the generated query set.
    pub query_stats: QuerySetStats,
    /// The configuration the workload was generated from.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Generates a workload deterministically from its configuration.
    pub fn generate(config: WorkloadConfig) -> Self {
        let mut symbols = SymbolTable::new();
        let stream = match config.dataset {
            Dataset::Snb => snb::generate(
                &SnbConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
            Dataset::Taxi => taxi::generate(
                &TaxiConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
            Dataset::BioGrid => biogrid::generate(
                &BioGridConfig {
                    target_edges: config.graph_edges,
                    seed: config.seed,
                    ..Default::default()
                },
                &mut symbols,
            ),
        };
        let graph = AttributeGraph::from_updates(stream.iter());
        let (queries, query_stats) = querygen::generate(
            &QueryGenConfig {
                count: config.num_queries,
                avg_size: config.avg_query_size,
                selectivity: config.selectivity,
                overlap: config.overlap,
                seed: config.seed ^ 0x9E37_79B9_7F4A_7C15,
                ..Default::default()
            },
            &graph,
            &mut symbols,
        );
        let name = format!(
            "{}-E{}-Q{}-l{}-s{:.0}%-o{:.0}%",
            config.dataset,
            config.graph_edges,
            config.num_queries,
            config.avg_query_size,
            config.selectivity * 100.0,
            config.overlap * 100.0,
        );
        Workload {
            name,
            symbols,
            stream,
            queries,
            query_stats,
            config,
        }
    }

    /// Number of updates in the stream.
    pub fn num_updates(&self) -> usize {
        self.stream.len()
    }

    /// Number of queries in the set.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_end_to_end() {
        for dataset in [Dataset::Snb, Dataset::Taxi, Dataset::BioGrid] {
            let w = Workload::generate(WorkloadConfig::new(dataset, 3_000, 50));
            assert_eq!(w.num_updates(), 3_000, "{dataset}");
            assert_eq!(w.num_queries(), 50, "{dataset}");
            assert!(!w.name.is_empty());
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_000, 30));
        let b = Workload::generate(WorkloadConfig::new(Dataset::Snb, 2_000, 30));
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = WorkloadConfig::new(Dataset::Taxi, 1_000, 10)
            .with_query_size(3)
            .with_selectivity(0.5)
            .with_overlap(0.6)
            .with_seed(7);
        assert_eq!(cfg.avg_query_size, 3);
        assert!((cfg.selectivity - 0.5).abs() < f64::EPSILON);
        assert!((cfg.overlap - 0.6).abs() < f64::EPSILON);
        assert_eq!(cfg.seed, 7);
        let w = Workload::generate(cfg);
        assert_eq!(w.config.avg_query_size, 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::Snb.to_string(), "SNB");
        assert_eq!(Dataset::Taxi.to_string(), "TAXI");
        assert_eq!(Dataset::BioGrid.to_string(), "BioGRID");
    }
}
