//! BioGRID-like protein–protein interaction stream.
//!
//! BioGRID is the paper's stress test: a single vertex type (protein) and a
//! single edge type (`interacts`), so *every* incoming update affects every
//! query in the database. The generator grows a protein population slowly and
//! wires interactions with preferential attachment, giving the heavy-tailed
//! degree distribution typical of interaction networks (the paper's 1M-edge
//! BioGRID graph has only 63K vertices — a ~16× edge/vertex ratio).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::{GraphStream, Update};

/// Configuration of the PPI generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BioGridConfig {
    /// Target number of interaction edges.
    pub target_edges: usize,
    /// Average number of interactions per protein (controls how fast the
    /// protein population grows relative to the edge count).
    pub edges_per_protein: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BioGridConfig {
    fn default() -> Self {
        BioGridConfig {
            target_edges: 100_000,
            edges_per_protein: 16,
            seed: 0x5EED_0003,
        }
    }
}

impl BioGridConfig {
    /// A configuration scaled to roughly `edges` updates.
    pub fn with_edges(edges: usize) -> Self {
        BioGridConfig {
            target_edges: edges,
            ..Default::default()
        }
    }
}

/// Generates a PPI update stream (single `interacts` edge label).
pub fn generate(config: &BioGridConfig, symbols: &mut SymbolTable) -> GraphStream {
    let interacts = symbols.intern("interacts");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stream = GraphStream::new();

    // `endpoints` repeats each protein once per incident edge, so sampling a
    // uniform element implements preferential attachment.
    let mut proteins: Vec<Sym> = Vec::new();
    let mut endpoints: Vec<Sym> = Vec::new();
    let mut seen: std::collections::HashSet<(Sym, Sym)> = std::collections::HashSet::new();
    let mut next_protein = 0usize;
    let new_protein = |symbols: &mut SymbolTable, next: &mut usize| -> Sym {
        let p = symbols.intern(&format!("protein_{next}"));
        *next += 1;
        p
    };

    // Seed population.
    for _ in 0..4 {
        let p = new_protein(symbols, &mut next_protein);
        proteins.push(p);
        endpoints.push(p);
    }

    while stream.len() < config.target_edges {
        // Introduce a new protein roughly every `edges_per_protein` edges.
        let introduce = rng.gen_range(0..config.edges_per_protein.max(1)) == 0;
        let (a, b) = if introduce {
            let p = new_protein(symbols, &mut next_protein);
            proteins.push(p);
            let partner = endpoints[rng.gen_range(0..endpoints.len())];
            (p, partner)
        } else {
            // Interactions are mostly unique in BioGRID; retry a few times to
            // find a pair not interacting yet (mild rewiring of the skew).
            let mut pair = None;
            for _ in 0..8 {
                let a = endpoints[rng.gen_range(0..endpoints.len())];
                let b = endpoints[rng.gen_range(0..endpoints.len())];
                if a != b && !seen.contains(&(a, b)) {
                    pair = Some((a, b));
                    break;
                }
            }
            match pair {
                Some(p) => p,
                None => continue,
            }
        };
        if a == b {
            continue;
        }
        seen.insert((a, b));
        endpoints.push(a);
        endpoints.push(b);
        stream.push(Update::new(interacts, a, b));
    }
    stream.truncate(config.target_edges);
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::model::graph::AttributeGraph;

    #[test]
    fn generates_requested_number_of_updates() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&BioGridConfig::with_edges(10_000), &mut symbols);
        assert_eq!(stream.len(), 10_000);
    }

    #[test]
    fn single_edge_label_only() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&BioGridConfig::with_edges(5_000), &mut symbols);
        let interacts = symbols.get("interacts").unwrap();
        assert!(stream.iter().all(|u| u.label == interacts));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = BioGridConfig::with_edges(4_000);
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        assert_eq!(generate(&cfg, &mut s1), generate(&cfg, &mut s2));
    }

    #[test]
    fn edge_to_vertex_ratio_is_high() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&BioGridConfig::with_edges(50_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let ratio = graph.num_edges() as f64 / graph.num_vertices() as f64;
        // The paper's BioGRID graph has ~16 edges per vertex; the synthetic
        // stand-in should at least be strongly edge-dominated.
        assert!(ratio > 5.0, "edges/vertex ratio too low: {ratio}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&BioGridConfig::with_edges(30_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let mut degrees: Vec<usize> = graph
            .vertices()
            .map(|&v| graph.out_degree(v) + graph.in_degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top_10: usize = degrees.iter().take(degrees.len() / 10 + 1).sum();
        assert!(
            top_10 as f64 / total as f64 > 0.3,
            "top-10% degree share too small"
        );
    }

    #[test]
    fn no_self_interactions() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&BioGridConfig::with_edges(5_000), &mut symbols);
        assert!(stream.iter().all(|u| u.src != u.tgt));
    }
}
