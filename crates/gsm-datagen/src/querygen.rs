//! Query-set generation (Section 6.1, "Query Set Configuration").
//!
//! The paper's query workload mixes three classes — chains, stars and cycles,
//! chosen equiprobably — with four knobs: the database size `|QDB|`, the
//! average query size `l` (edges per pattern), the selectivity `σ` (fraction
//! of the query set that is eventually satisfied by the stream), and the
//! overlap `o` (fraction of queries sharing sub-patterns with other queries).
//!
//! Satisfied ("positive") queries are sampled as sub-structures of the final
//! graph, i.e. the graph obtained after the full stream has been applied, so
//! they are guaranteed to match once their last edge arrives. Unsatisfiable
//! ("negative") queries are the same structures with one vertex replaced by a
//! fresh constant that never occurs in the stream. Overlap is created by
//! reusing prefixes of previously sampled walks as the backbone of later
//! queries, which is exactly the sharing TRIC's trie clustering exploits.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::graph::AttributeGraph;
use gsm_core::model::term::{PatternEdge, Term};
use gsm_core::model::update::Update;
use gsm_core::query::classes::{classify, QueryClass};
use gsm_core::query::pattern::QueryPattern;

/// Configuration of the query-set generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryGenConfig {
    /// Number of queries to generate (`|QDB|`).
    pub count: usize,
    /// Average number of edges per query (`l`).
    pub avg_size: usize,
    /// Fraction of queries that the stream eventually satisfies (`σ`).
    pub selectivity: f64,
    /// Fraction of queries that share sub-patterns with earlier queries (`o`).
    pub overlap: f64,
    /// Probability that a sampled graph vertex stays a constant in the
    /// pattern (the rest become variables).
    pub const_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            count: 5_000,
            avg_size: 5,
            selectivity: 0.25,
            overlap: 0.35,
            const_probability: 0.25,
            seed: 0x5EED_0004,
        }
    }
}

/// Summary statistics of a generated query set, used by tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuerySetStats {
    /// Number of chain-shaped queries.
    pub chains: usize,
    /// Number of star-shaped queries.
    pub stars: usize,
    /// Number of cycle-shaped queries.
    pub cycles: usize,
    /// Queries of any other shape (fallbacks).
    pub other: usize,
    /// Queries designed to be satisfied by the stream.
    pub positive: usize,
    /// Total number of pattern edges across the set.
    pub total_edges: usize,
}

impl QuerySetStats {
    /// Average pattern size in edges.
    pub fn avg_edges(&self, count: usize) -> f64 {
        if count == 0 {
            0.0
        } else {
            self.total_edges as f64 / count as f64
        }
    }
}

/// Generates a query set against the *final* graph of a stream.
pub fn generate(
    config: &QueryGenConfig,
    graph: &AttributeGraph,
    symbols: &mut SymbolTable,
) -> (Vec<QueryPattern>, QuerySetStats) {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stats = QuerySetStats::default();
    let mut queries = Vec::with_capacity(config.count);

    // Deterministic vertex universe (the graph's sets iterate in hash order).
    let mut vertices: Vec<Sym> = graph.vertices().copied().collect();
    vertices.sort_unstable();
    let starts: Vec<Sym> = vertices
        .iter()
        .copied()
        .filter(|&v| graph.out_degree(v) > 0)
        .collect();
    if starts.is_empty() || config.count == 0 {
        return (queries, stats);
    }

    let num_positive = (config.count as f64 * config.selectivity).round() as usize;
    let mut walk_pool: Vec<Vec<Update>> = Vec::new();
    let mut negative_counter = 0usize;

    for i in 0..config.count {
        let positive = i < num_positive;
        let class = match i % 3 {
            0 => QueryClass::Chain,
            1 => QueryClass::Star,
            _ => QueryClass::Cycle,
        };
        let size = sample_size(&mut rng, config.avg_size);

        let walk = match class {
            QueryClass::Chain => chain_walk(
                &mut rng,
                graph,
                &starts,
                size,
                config.overlap,
                &mut walk_pool,
            ),
            QueryClass::Star => star_edges(&mut rng, graph, &vertices, size),
            _ => cycle_walk(&mut rng, graph, &starts, size).unwrap_or_else(|| {
                chain_walk(
                    &mut rng,
                    graph,
                    &starts,
                    size,
                    config.overlap,
                    &mut walk_pool,
                )
            }),
        };
        let walk = if walk.is_empty() {
            fallback_edge(&mut rng, graph, &starts)
        } else {
            walk
        };

        let mut pattern_edges = to_pattern(&mut rng, &walk, config.const_probability, positive);
        if !positive {
            poison(&mut rng, &mut pattern_edges, symbols, &mut negative_counter);
        }
        let query = match QueryPattern::from_edges(pattern_edges) {
            Ok(q) => q,
            Err(_) => {
                // Extremely rare (disconnected star sampling); fall back to a
                // single-edge pattern which is always valid.
                let single = fallback_edge(&mut rng, graph, &starts);
                let mut edges = to_pattern(&mut rng, &single, config.const_probability, positive);
                if !positive {
                    poison(&mut rng, &mut edges, symbols, &mut negative_counter);
                }
                QueryPattern::from_edges(edges).expect("single edge patterns are valid")
            }
        };

        match classify(&query) {
            QueryClass::Chain => stats.chains += 1,
            QueryClass::Star => stats.stars += 1,
            QueryClass::Cycle => stats.cycles += 1,
            _ => stats.other += 1,
        }
        if positive {
            stats.positive += 1;
        }
        stats.total_edges += query.num_edges();
        queries.push(query);
    }
    (queries, stats)
}

fn sample_size(rng: &mut SmallRng, avg: usize) -> usize {
    let avg = avg.max(1);
    let lo = avg.saturating_sub(1).max(1);
    let hi = avg + 1;
    rng.gen_range(lo..=hi)
}

fn random_walk(rng: &mut SmallRng, graph: &AttributeGraph, start: Sym, len: usize) -> Vec<Update> {
    let mut walk = Vec::with_capacity(len);
    let mut current = start;
    for _ in 0..len {
        let out = graph.out_edges(current);
        if out.is_empty() {
            break;
        }
        let (label, tgt) = out[rng.gen_range(0..out.len())];
        walk.push(Update::new(label, current, tgt));
        current = tgt;
    }
    walk
}

fn chain_walk(
    rng: &mut SmallRng,
    graph: &AttributeGraph,
    starts: &[Sym],
    size: usize,
    overlap: f64,
    pool: &mut Vec<Vec<Update>>,
) -> Vec<Update> {
    let reuse = !pool.is_empty() && rng.gen::<f64>() < overlap;
    let mut walk: Vec<Update> = if reuse {
        let base = &pool[rng.gen_range(0..pool.len())];
        let keep = rng.gen_range(1..=base.len().min(size));
        base[..keep].to_vec()
    } else {
        Vec::new()
    };
    // Extend (or start) the walk until it has `size` edges or gets stuck.
    for attempt in 0..5 {
        if walk.len() >= size {
            break;
        }
        let from = match walk.last() {
            Some(u) => u.tgt,
            None => starts[rng.gen_range(0..starts.len())],
        };
        let extension = random_walk(rng, graph, from, size - walk.len());
        if extension.is_empty() && walk.is_empty() && attempt < 4 {
            continue;
        }
        walk.extend(extension);
        if walk
            .last()
            .map(|u| graph.out_degree(u.tgt) == 0)
            .unwrap_or(false)
        {
            break;
        }
    }
    if !walk.is_empty() {
        pool.push(walk.clone());
        if pool.len() > 256 {
            pool.remove(0);
        }
    }
    walk
}

fn star_edges(
    rng: &mut SmallRng,
    graph: &AttributeGraph,
    vertices: &[Sym],
    size: usize,
) -> Vec<Update> {
    // Find a centre with enough incident edges (a few attempts, then best-effort).
    let mut best: Option<Sym> = None;
    for _ in 0..32 {
        let v = vertices[rng.gen_range(0..vertices.len())];
        let degree = graph.out_degree(v) + graph.in_degree(v);
        if degree >= size {
            best = Some(v);
            break;
        }
        if best
            .map(|b| graph.out_degree(b) + graph.in_degree(b) < degree)
            .unwrap_or(true)
        {
            best = Some(v);
        }
    }
    let Some(centre) = best else {
        return Vec::new();
    };
    let mut edges: Vec<Update> = Vec::new();
    for &(label, tgt) in graph.out_edges(centre) {
        if edges.len() >= size {
            break;
        }
        let u = Update::new(label, centre, tgt);
        if !edges.contains(&u) {
            edges.push(u);
        }
    }
    for &(label, src) in graph.in_edges(centre) {
        if edges.len() >= size {
            break;
        }
        let u = Update::new(label, src, centre);
        if !edges.contains(&u) {
            edges.push(u);
        }
    }
    edges
}

fn cycle_walk(
    rng: &mut SmallRng,
    graph: &AttributeGraph,
    starts: &[Sym],
    size: usize,
) -> Option<Vec<Update>> {
    let size = size.max(2);
    for _ in 0..50 {
        let start = starts[rng.gen_range(0..starts.len())];
        let walk = random_walk(rng, graph, start, size - 1);
        if walk.len() != size - 1 {
            continue;
        }
        let last = walk.last().expect("non-empty").tgt;
        // Look for a closing edge back to the start vertex.
        if let Some(&(label, _)) = graph.out_edges(last).iter().find(|&&(_, tgt)| tgt == start) {
            let mut cycle = walk;
            cycle.push(Update::new(label, last, start));
            return Some(cycle);
        }
    }
    None
}

fn fallback_edge(rng: &mut SmallRng, graph: &AttributeGraph, starts: &[Sym]) -> Vec<Update> {
    for _ in 0..16 {
        let v = starts[rng.gen_range(0..starts.len())];
        let out = graph.out_edges(v);
        if !out.is_empty() {
            let (label, tgt) = out[rng.gen_range(0..out.len())];
            return vec![Update::new(label, v, tgt)];
        }
    }
    Vec::new()
}

/// Converts a set of concrete graph edges into a pattern, mapping each
/// distinct graph vertex consistently to either a constant (keeping its
/// identity) or a fresh variable.
fn to_pattern(
    rng: &mut SmallRng,
    walk: &[Update],
    const_probability: f64,
    _positive: bool,
) -> Vec<PatternEdge> {
    let mut term_of: HashMap<Sym, Term> = HashMap::new();
    let mut next_var = 0u32;
    let map = |v: Sym,
               rng: &mut SmallRng,
               term_of: &mut HashMap<Sym, Term>,
               next_var: &mut u32|
     -> Term {
        *term_of.entry(v).or_insert_with(|| {
            if rng.gen::<f64>() < const_probability {
                Term::Const(v)
            } else {
                let t = Term::Var(*next_var);
                *next_var += 1;
                t
            }
        })
    };
    walk.iter()
        .map(|u| {
            let src = map(u.src, rng, &mut term_of, &mut next_var);
            let tgt = map(u.tgt, rng, &mut term_of, &mut next_var);
            PatternEdge::new(u.label, src, tgt)
        })
        .collect()
}

/// Makes a pattern unsatisfiable by rebinding one endpoint to a fresh
/// constant that never occurs in any stream.
fn poison(
    rng: &mut SmallRng,
    edges: &mut [PatternEdge],
    symbols: &mut SymbolTable,
    counter: &mut usize,
) {
    if edges.is_empty() {
        return;
    }
    let fresh = symbols.intern(&format!("__never_matches_{counter}"));
    *counter += 1;
    let idx = rng.gen_range(0..edges.len());
    // Replace the target (less likely to disconnect star patterns rooted at
    // the source).
    edges[idx].tgt = Term::Const(fresh);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snb::{self, SnbConfig};

    fn small_graph(symbols: &mut SymbolTable) -> AttributeGraph {
        let stream = snb::generate(&SnbConfig::with_edges(8_000), symbols);
        AttributeGraph::from_updates(stream.iter())
    }

    #[test]
    fn generates_requested_count_and_size() {
        let mut symbols = SymbolTable::new();
        let graph = small_graph(&mut symbols);
        let cfg = QueryGenConfig {
            count: 200,
            avg_size: 4,
            ..Default::default()
        };
        let (queries, stats) = generate(&cfg, &graph, &mut symbols);
        assert_eq!(queries.len(), 200);
        let avg = stats.avg_edges(queries.len());
        assert!(avg > 1.5 && avg < 6.0, "average size {avg} out of range");
    }

    #[test]
    fn query_classes_are_mixed() {
        let mut symbols = SymbolTable::new();
        let graph = small_graph(&mut symbols);
        let cfg = QueryGenConfig {
            count: 300,
            avg_size: 4,
            ..Default::default()
        };
        let (_, stats) = generate(&cfg, &graph, &mut symbols);
        assert!(stats.chains > 0);
        assert!(stats.stars > 0);
        // Directed cycles are rare in DAG-ish social graphs; the generator
        // falls back to chains when it cannot close one, so we only require
        // that chains+stars+cycles+other add up.
        assert_eq!(stats.chains + stats.stars + stats.cycles + stats.other, 300);
    }

    #[test]
    fn selectivity_controls_positive_share() {
        let mut symbols = SymbolTable::new();
        let graph = small_graph(&mut symbols);
        let cfg = QueryGenConfig {
            count: 100,
            selectivity: 0.3,
            ..Default::default()
        };
        let (_, stats) = generate(&cfg, &graph, &mut symbols);
        assert_eq!(stats.positive, 30);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut s1 = SymbolTable::new();
        let g1 = small_graph(&mut s1);
        let mut s2 = SymbolTable::new();
        let g2 = small_graph(&mut s2);
        let cfg = QueryGenConfig {
            count: 50,
            ..Default::default()
        };
        let (q1, _) = generate(&cfg, &g1, &mut s1);
        let (q2, _) = generate(&cfg, &g2, &mut s2);
        assert_eq!(q1, q2);
    }

    #[test]
    fn negative_queries_never_match_the_final_graph() {
        use gsm_core::ContinuousEngine;
        use gsm_tric::TricEngine;

        let mut symbols = SymbolTable::new();
        let stream = snb::generate(&SnbConfig::with_edges(3_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let cfg = QueryGenConfig {
            count: 40,
            avg_size: 3,
            selectivity: 0.5,
            ..Default::default()
        };
        let (queries, stats) = generate(&cfg, &graph, &mut symbols);

        let mut engine = TricEngine::tric_plus();
        for q in &queries {
            engine.register_query(q).unwrap();
        }
        let mut satisfied = std::collections::HashSet::new();
        for u in stream.iter() {
            for m in engine.apply_update(*u).matches {
                satisfied.insert(m.query.index());
            }
        }
        // No negative query (index >= positive count) may ever be satisfied.
        for idx in &satisfied {
            assert!(*idx < stats.positive, "negative query {idx} was satisfied");
        }
        // A decent share of positive queries should be satisfied.
        assert!(
            satisfied.len() * 2 >= stats.positive,
            "only {} of {} positive queries satisfied",
            satisfied.len(),
            stats.positive
        );
    }

    #[test]
    fn overlap_increases_trie_sharing() {
        use gsm_core::ContinuousEngine;
        use gsm_tric::TricEngine;

        let mut symbols = SymbolTable::new();
        let graph = small_graph(&mut symbols);
        let low = QueryGenConfig {
            count: 200,
            overlap: 0.05,
            const_probability: 0.0,
            ..Default::default()
        };
        let high = QueryGenConfig {
            count: 200,
            overlap: 0.9,
            const_probability: 0.0,
            ..Default::default()
        };
        let (q_low, _) = generate(&low, &graph, &mut symbols);
        let (q_high, _) = generate(&high, &graph, &mut symbols);

        let nodes = |queries: &[QueryPattern]| {
            let mut e = TricEngine::tric();
            for q in queries {
                e.register_query(q).unwrap();
            }
            e.num_trie_nodes()
        };
        assert!(
            nodes(&q_high) < nodes(&q_low),
            "higher overlap should produce more node sharing ({} vs {})",
            nodes(&q_high),
            nodes(&q_low)
        );
    }
}
