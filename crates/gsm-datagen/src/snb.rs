//! SNB-like social-network activity stream.
//!
//! Simulates the evolution of a social network the way the LDBC Social
//! Network Benchmark does: people join, become friends (preferentially with
//! well-connected people), moderate and join forums, create posts and
//! comments, like content and check in at places. Every activity is emitted
//! as one or more edge-addition updates using the SNB edge vocabulary, so the
//! query workloads of the paper (Fig. 4) can be expressed verbatim.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsm_core::interner::{Sym, SymbolTable};
use gsm_core::model::update::{GraphStream, Update};

/// Configuration of the SNB-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnbConfig {
    /// Target number of edge-addition updates to emit.
    pub target_edges: usize,
    /// Number of places (cities) people live in / check in at.
    pub num_places: usize,
    /// Number of tags posts can carry.
    pub num_tags: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SnbConfig {
    fn default() -> Self {
        SnbConfig {
            target_edges: 100_000,
            num_places: 200,
            num_tags: 500,
            seed: 0x5EED_0001,
        }
    }
}

impl SnbConfig {
    /// A configuration scaled to roughly `edges` updates.
    pub fn with_edges(edges: usize) -> Self {
        SnbConfig {
            target_edges: edges,
            ..Default::default()
        }
    }
}

/// The edge labels emitted by the SNB-like generator.
#[derive(Debug, Clone, Copy)]
pub struct SnbVocabulary {
    /// person → person friendship.
    pub knows: Sym,
    /// forum → person moderation.
    pub has_moderator: Sym,
    /// forum → person membership.
    pub has_member: Sym,
    /// person → post authorship.
    pub posted: Sym,
    /// post → forum containment.
    pub contained_in: Sym,
    /// comment → person authorship.
    pub has_creator: Sym,
    /// comment → post reply.
    pub reply_of: Sym,
    /// person → post like.
    pub likes: Sym,
    /// person → place residence.
    pub is_located_in: Sym,
    /// person → place check-in.
    pub checks_in: Sym,
    /// post → tag annotation.
    pub has_tag: Sym,
}

impl SnbVocabulary {
    /// Interns the vocabulary into `symbols`.
    pub fn intern(symbols: &mut SymbolTable) -> Self {
        SnbVocabulary {
            knows: symbols.intern("knows"),
            has_moderator: symbols.intern("hasModerator"),
            has_member: symbols.intern("hasMember"),
            posted: symbols.intern("posted"),
            contained_in: symbols.intern("containedIn"),
            has_creator: symbols.intern("hasCreator"),
            reply_of: symbols.intern("replyOf"),
            likes: symbols.intern("likes"),
            is_located_in: symbols.intern("isLocatedIn"),
            checks_in: symbols.intern("checksIn"),
            has_tag: symbols.intern("hasTag"),
        }
    }
}

struct SnbState {
    persons: Vec<Sym>,
    forums: Vec<Sym>,
    posts: Vec<Sym>,
    places: Vec<Sym>,
    tags: Vec<Sym>,
    next_person: usize,
    next_forum: usize,
    next_post: usize,
    next_comment: usize,
}

impl SnbState {
    /// Preferential pick: recent/earlier entities are more likely in a way
    /// that produces a skewed degree distribution (quadratic bias towards the
    /// front of the list, where well-connected entities live).
    fn pick(rng: &mut SmallRng, items: &[Sym]) -> Sym {
        debug_assert!(!items.is_empty());
        let r: f64 = rng.gen::<f64>();
        let idx = ((r * r) * items.len() as f64) as usize;
        items[idx.min(items.len() - 1)]
    }

    fn pick_recent(rng: &mut SmallRng, items: &[Sym], window: usize) -> Sym {
        debug_assert!(!items.is_empty());
        let start = items.len().saturating_sub(window);
        items[rng.gen_range(start..items.len())]
    }
}

/// Generates an SNB-like update stream. Returns the stream; all vertex and
/// edge labels are interned into `symbols`.
pub fn generate(config: &SnbConfig, symbols: &mut SymbolTable) -> GraphStream {
    let vocab = SnbVocabulary::intern(symbols);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut stream = GraphStream::new();
    let mut state = SnbState {
        persons: Vec::new(),
        forums: Vec::new(),
        posts: Vec::new(),
        places: (0..config.num_places.max(1))
            .map(|i| symbols.intern(&format!("place_{i}")))
            .collect(),
        tags: (0..config.num_tags.max(1))
            .map(|i| symbols.intern(&format!("tag_{i}")))
            .collect(),
        next_person: 0,
        next_forum: 0,
        next_post: 0,
        next_comment: 0,
    };

    // Bootstrap: a handful of people and forums so every event type can fire.
    for _ in 0..10 {
        new_person(&mut state, &vocab, symbols, &mut rng, &mut stream);
    }
    for _ in 0..3 {
        new_forum(&mut state, &vocab, symbols, &mut rng, &mut stream);
    }

    while stream.len() < config.target_edges {
        // Event mix loosely follows SNB's interactive workload: content
        // creation and likes dominate, structural events are rarer.
        let roll = rng.gen_range(0..100);
        match roll {
            0..=7 => new_person(&mut state, &vocab, symbols, &mut rng, &mut stream),
            8..=22 => friendship(&mut state, &vocab, &mut rng, &mut stream),
            23..=24 => new_forum(&mut state, &vocab, symbols, &mut rng, &mut stream),
            25..=32 => join_forum(&mut state, &vocab, &mut rng, &mut stream),
            33..=55 => new_post(&mut state, &vocab, symbols, &mut rng, &mut stream),
            56..=72 => new_comment(&mut state, &vocab, symbols, &mut rng, &mut stream),
            73..=90 => like(&mut state, &vocab, &mut rng, &mut stream),
            _ => check_in(&mut state, &vocab, &mut rng, &mut stream),
        }
    }
    stream.truncate(config.target_edges);
    stream
}

fn new_person(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    symbols: &mut SymbolTable,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    let person = symbols.intern(&format!("person_{}", state.next_person));
    state.next_person += 1;
    let place = SnbState::pick(rng, &state.places);
    state.persons.push(person);
    stream.push(Update::new(vocab.is_located_in, person, place));
    // A newcomer usually knows somebody already.
    if state.persons.len() > 1 {
        let friend = SnbState::pick(rng, &state.persons[..state.persons.len() - 1]);
        stream.push(Update::new(vocab.knows, person, friend));
    }
}

fn friendship(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.persons.len() < 2 {
        return;
    }
    let a = SnbState::pick(rng, &state.persons);
    let b = SnbState::pick(rng, &state.persons);
    if a != b {
        stream.push(Update::new(vocab.knows, a, b));
    }
}

fn new_forum(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    symbols: &mut SymbolTable,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.persons.is_empty() {
        return;
    }
    let forum = symbols.intern(&format!("forum_{}", state.next_forum));
    state.next_forum += 1;
    state.forums.push(forum);
    let moderator = SnbState::pick(rng, &state.persons);
    stream.push(Update::new(vocab.has_moderator, forum, moderator));
    stream.push(Update::new(vocab.has_member, forum, moderator));
}

fn join_forum(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.forums.is_empty() || state.persons.is_empty() {
        return;
    }
    let forum = SnbState::pick(rng, &state.forums);
    let person = SnbState::pick(rng, &state.persons);
    stream.push(Update::new(vocab.has_member, forum, person));
}

fn new_post(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    symbols: &mut SymbolTable,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.persons.is_empty() || state.forums.is_empty() {
        return;
    }
    let post = symbols.intern(&format!("post_{}", state.next_post));
    state.next_post += 1;
    let author = SnbState::pick(rng, &state.persons);
    let forum = SnbState::pick(rng, &state.forums);
    let tag = SnbState::pick(rng, &state.tags);
    state.posts.push(post);
    stream.push(Update::new(vocab.posted, author, post));
    stream.push(Update::new(vocab.contained_in, post, forum));
    stream.push(Update::new(vocab.has_tag, post, tag));
}

fn new_comment(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    symbols: &mut SymbolTable,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.posts.is_empty() || state.persons.is_empty() {
        return;
    }
    let comment = symbols.intern(&format!("comment_{}", state.next_comment));
    state.next_comment += 1;
    let author = SnbState::pick(rng, &state.persons);
    let post = SnbState::pick_recent(rng, &state.posts, 64);
    stream.push(Update::new(vocab.has_creator, comment, author));
    stream.push(Update::new(vocab.reply_of, comment, post));
}

fn like(state: &mut SnbState, vocab: &SnbVocabulary, rng: &mut SmallRng, stream: &mut GraphStream) {
    if state.posts.is_empty() || state.persons.is_empty() {
        return;
    }
    let person = SnbState::pick(rng, &state.persons);
    let post = SnbState::pick_recent(rng, &state.posts, 128);
    stream.push(Update::new(vocab.likes, person, post));
}

fn check_in(
    state: &mut SnbState,
    vocab: &SnbVocabulary,
    rng: &mut SmallRng,
    stream: &mut GraphStream,
) {
    if state.persons.is_empty() {
        return;
    }
    let person = SnbState::pick(rng, &state.persons);
    let place = SnbState::pick(rng, &state.places);
    stream.push(Update::new(vocab.checks_in, person, place));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::model::graph::AttributeGraph;

    #[test]
    fn generates_requested_number_of_updates() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&SnbConfig::with_edges(5_000), &mut symbols);
        assert_eq!(stream.len(), 5_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        let cfg = SnbConfig::with_edges(2_000);
        let a = generate(&cfg, &mut s1);
        let b = generate(&cfg, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = SymbolTable::new();
        let mut s2 = SymbolTable::new();
        let a = generate(
            &SnbConfig {
                seed: 1,
                ..SnbConfig::with_edges(2_000)
            },
            &mut s1,
        );
        let b = generate(
            &SnbConfig {
                seed: 2,
                ..SnbConfig::with_edges(2_000)
            },
            &mut s2,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn vocabulary_is_diverse_and_vertex_ratio_is_plausible() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&SnbConfig::with_edges(20_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let labels: std::collections::HashSet<_> = stream.iter().map(|u| u.label).collect();
        assert!(
            labels.len() >= 8,
            "expected a rich edge vocabulary, got {}",
            labels.len()
        );
        // The paper's SNB graphs have roughly 0.4–0.6 vertices per edge.
        let ratio = graph.num_vertices() as f64 / graph.num_edges() as f64;
        assert!(
            ratio > 0.15 && ratio < 0.9,
            "vertex/edge ratio {ratio} out of range"
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut symbols = SymbolTable::new();
        let stream = generate(&SnbConfig::with_edges(20_000), &mut symbols);
        let graph = AttributeGraph::from_updates(stream.iter());
        let mut degrees: Vec<usize> = graph
            .vertices()
            .map(|&v| graph.out_degree(v) + graph.in_degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = degrees.iter().take(degrees.len() / 100 + 1).sum();
        let total: usize = degrees.iter().sum();
        // The top 1% of vertices should hold well above 1% of the degree mass.
        assert!(top_share as f64 / total as f64 > 0.05);
    }
}
