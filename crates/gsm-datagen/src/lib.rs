//! # gsm-datagen
//!
//! Workload substrate for the experimental evaluation (Section 6.1 of the
//! paper). The paper evaluates on three datasets — the LDBC Social Network
//! Benchmark, a 2013 NYC taxi-ride trace, and the BioGRID protein-interaction
//! repository — plus synthetic query sets mixing chain, star and cycle
//! patterns with controlled average size `l`, selectivity `σ` and overlap `o`.
//!
//! None of those artifacts can be shipped with an offline pure-Rust build, so
//! this crate provides faithful synthetic stand-ins:
//!
//! * [`snb`] — a social-network activity simulator emitting the SNB edge
//!   vocabulary (`knows`, `hasModerator`, `posted`, `containedIn`, `likes`,
//!   `replyOf`, `checksIn`, …) with preferential attachment;
//! * [`taxi`] — a taxi-trip simulator (rides, medallions, drivers, zones,
//!   payment types) with heavy-hitter pickup/drop-off zones;
//! * [`biogrid`] — a protein–protein interaction stream with a single vertex
//!   and edge type (the paper's stress test: every update affects the whole
//!   query database);
//! * [`querygen`] — the query-set generator: chain/star/cycle patterns
//!   sampled from the *final* graph (so the requested fraction σ of queries
//!   is eventually satisfied), with an overlap knob `o` that makes queries
//!   share sub-paths, and negative queries anchored on never-occurring
//!   constants;
//! * [`workload`] — bundles a symbol table, an update stream and a query set,
//!   with presets mirroring the paper's configurations at configurable scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biogrid;
pub mod querygen;
pub mod snb;
pub mod taxi;
pub mod workload;

pub use querygen::{QueryGenConfig, QuerySetStats};
pub use workload::{Dataset, Workload, WorkloadConfig};
