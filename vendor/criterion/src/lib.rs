//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (sample size, warm-up and measurement windows, throughput),
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: after a warm-up window, the target closure runs
//! `sample_size` samples; each sample executes enough iterations to fill its
//! share of the measurement window (estimated from the warm-up timing). The
//! harness reports the minimum, mean and maximum per-iteration time across
//! samples plus the sample standard deviation (variance-aware sampling, so
//! sweeps are comparable run to run) — and, when a [`Throughput`] is
//! configured, the corresponding element/byte rates. Results are printed to
//! stdout; there is no HTML report, statistical regression testing, or
//! outlier analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement kinds (only wall-clock time is implemented).
pub mod measurement {
    /// Wall-clock time measurement — the criterion default.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Throughput configuration for a benchmark group: work done per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness requested.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time (and the
    /// drop of the routine's output) is excluded from the measurement. This
    /// is the API for benchmarking stateful work that must start from a
    /// fresh input every iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            total += start.elapsed();
            drop(black_box(out));
        }
        self.elapsed = total;
    }
}

/// Batch sizing hints accepted by [`Bencher::iter_batched`] (the stand-in
/// times one input per iteration regardless, so the hint is advisory only).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per allocation batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// Exactly one input per iteration.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean seconds per iteration across samples.
    pub mean_s: f64,
    /// Minimum seconds per iteration across samples.
    pub min_s: f64,
    /// Maximum seconds per iteration across samples.
    pub max_s: f64,
    /// Sample standard deviation of seconds per iteration across samples
    /// (0.0 when only one sample was taken).
    pub std_s: f64,
    /// Number of samples the aggregates were computed over.
    pub samples: usize,
    /// Configured per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Elements (or bytes) processed per second, when a throughput is set.
    pub fn per_second(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                Some(n as f64 / self.mean_s)
            }
            None => None,
        }
    }

    /// Relative standard deviation (std/mean), the run-to-run comparability
    /// figure for sweeps: two measurements of the same benchmark whose means
    /// differ by much more than their combined spread genuinely moved.
    pub fn rsd(&self) -> f64 {
        if self.mean_s > 0.0 {
            self.std_s / self.mean_s
        } else {
            0.0
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

fn format_rate(rate: f64, throughput: Throughput) -> String {
    let unit = match throughput {
        Throughput::Elements(_) => "elem/s",
        Throughput::Bytes(_) => "B/s",
    };
    if rate >= 1e6 {
        format!("{:.4} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.4} {unit}")
    }
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group with default configuration.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
            _measurement: PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let config = GroupConfig::default();
        run_benchmark(&mut self.results, id.id, config, f);
        self
    }

    /// All results measured through this instance so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    _measurement: PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.config.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        run_benchmark(&mut self.criterion.results, full_id, self.config, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a closure taking only the [`Bencher`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&mut self.criterion.results, full_id, self.config, f);
        self
    }

    /// Ends the group (kept for API compatibility; drops do the same).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    results: &mut Vec<BenchResult>,
    id: String,
    config: GroupConfig,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up: single-iteration runs until the window closes; the last
    // timing seeds the iteration-count estimate.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        bencher.iters = 1;
        f(&mut bencher);
        if bencher.elapsed > Duration::ZERO {
            per_iter = bencher.elapsed;
        }
        if warm_start.elapsed() >= config.warm_up_time {
            break;
        }
    }

    // Measurement: fill the window with `sample_size` samples.
    let per_sample = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = ((per_sample / per_iter.as_secs_f64()).floor() as u64).max(1);
    let mut sample_secs = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        sample_secs.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }

    let mean_s = sample_secs.iter().sum::<f64>() / sample_secs.len() as f64;
    let min_s = sample_secs.iter().copied().fold(f64::INFINITY, f64::min);
    let max_s = sample_secs.iter().copied().fold(0.0f64, f64::max);
    // Sample (Bessel-corrected) standard deviation, so sweeps can be
    // compared run to run with an explicit noise figure.
    let std_s = if sample_secs.len() > 1 {
        let var = sample_secs
            .iter()
            .map(|&s| (s - mean_s) * (s - mean_s))
            .sum::<f64>()
            / (sample_secs.len() - 1) as f64;
        var.sqrt()
    } else {
        0.0
    };
    let result = BenchResult {
        id,
        mean_s,
        min_s,
        max_s,
        std_s,
        samples: sample_secs.len(),
        throughput: config.throughput,
    };

    print!(
        "{:<50} time: [{} {} {}] ± {} ({:.1}%)",
        result.id,
        format_time(result.min_s),
        format_time(result.mean_s),
        format_time(result.max_s),
        format_time(result.std_s),
        result.rsd() * 100.0
    );
    if let (Some(rate), Some(t)) = (result.per_second(), result.throughput) {
        print!("  thrpt: [{}]", format_rate(rate, t));
    }
    println!();

    results.push(result);
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(5);
            g.warm_up_time(Duration::from_millis(5));
            g.measurement_time(Duration::from_millis(20));
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "unit/sum/100");
        assert!(results[0].mean_s > 0.0);
        assert!(results[0].per_second().unwrap() > 0.0);
        assert!(results[0].min_s <= results[0].mean_s);
        assert!(results[0].mean_s <= results[0].max_s);
        assert_eq!(results[0].samples, 5);
        // The spread statistics must be consistent: non-negative deviation,
        // never larger than the full min→max range.
        assert!(results[0].std_s >= 0.0);
        assert!(results[0].std_s <= results[0].max_s - results[0].min_s + f64::EPSILON);
        assert!(results[0].rsd() >= 0.0);
    }

    #[test]
    fn std_dev_matches_hand_computed_value() {
        // Aggregation maths verified directly on a synthetic result.
        let samples = [1.0f64, 2.0, 3.0, 4.0];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        let expected_std = var.sqrt();
        let result = BenchResult {
            id: "synthetic".into(),
            mean_s: mean,
            min_s: 1.0,
            max_s: 4.0,
            std_s: expected_std,
            samples: samples.len(),
            throughput: None,
        };
        assert!((result.std_s - 1.2909944487358056).abs() < 1e-12);
        assert!((result.rsd() - expected_std / mean).abs() < 1e-12);
        assert_eq!(result.per_second(), None);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
