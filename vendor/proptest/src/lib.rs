//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the proptest 1.x API used by the workspace's
//! property tests: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! range and tuple strategies, [`any`], [`collection::vec`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest:
//! * **No shrinking.** A failing case panics with the generated inputs left
//!   to the assertion message; it is not minimised.
//! * **Deterministic seeding.** Cases are derived from a fixed per-test seed
//!   (the hash of the test name), so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not run to completion.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it is skipped, not failed.
    Reject,
}

/// The deterministic generator driving value production.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        self.inner.gen_range(lo..=hi_inclusive)
    }
}

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy producing a fixed value every time (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "arbitrary value" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Sizes accepted by [`collection::vec`]: an exact length, a half-open range
/// or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_usize(self.lo, self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Runs the body of one `proptest!`-generated test function. Exposed for the
/// macro only.
#[doc(hidden)]
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    let mut rejected = 0u64;
    while executed < config.cases {
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < 65_536,
                    "proptest stub: too many prop_assume! rejections in {name}"
                );
            }
        }
    }
}

/// Defines property-test functions: each argument is drawn from its strategy
/// and the body re-runs for a configurable number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure; the stub
/// performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for &(n, _) in &v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u32..5).prop_map(|v| v * 2);
        let mut rng = crate::TestRng::from_name("prop_map_transforms");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn exact_vec_size() {
        let strat = crate::collection::vec(0u8..2, 3);
        let mut rng = crate::TestRng::from_name("exact_vec_size");
        assert_eq!(strat.generate(&mut rng).len(), 3);
    }
}
