//! Collection strategies (`proptest::collection`).

use crate::{SizeRange, Strategy, TestRng};

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s of values drawn from `element`, with a length
/// drawn from `size` (an exact `usize`, a `Range<usize>` or a
/// `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
