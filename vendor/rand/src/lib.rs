//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) subset of the rand 0.8 API that the workspace uses:
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen`] for `f64`/`bool`,
//! [`SeedableRng::seed_from_u64`], and the [`rngs::StdRng`] / [`rngs::SmallRng`]
//! generator types. Everything is deterministic given a seed; the generators
//! are SplitMix64-based, which is more than adequate for test- and
//! workload-generation purposes (no cryptographic claims whatsoever).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic general-purpose generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }

    /// Deterministic small/fast generator (stand-in for rand's `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                state: seed ^ 0xE703_7ED1_A0B4_28DB,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i32..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
