//! Traffic monitoring over a taxi-trip stream (the paper's NYC use case).
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```
//!
//! Continuous queries over the synthetic taxi stream detect operational
//! patterns as soon as the completing edge arrives:
//!
//! * a "hot loop" — a ride that picks up and drops off in the same zone,
//! * a "premium night ride" — a ride in a given hour bucket with a premium
//!   fare paid by card,
//! * zone-pair surveillance — any ride from the busiest zone to another zone.

use std::collections::HashMap;

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ContinuousEngine;
use graph_stream_matching::datagen::taxi::{self, TaxiConfig};
use graph_stream_matching::tric::TricEngine;

fn main() {
    let mut symbols = SymbolTable::new();
    let stream = taxi::generate(&TaxiConfig::with_edges(20_000), &mut symbols);
    println!("generated {} taxi-trip updates", stream.len());

    let hot_loop = QueryPattern::parse(
        "?ride -pickupAt-> ?zone; ?ride -dropoffAt-> ?zone",
        &mut symbols,
    )
    .expect("valid pattern");
    let premium_night = QueryPattern::parse(
        "?ride -fareBucket-> fare_premium; \
         ?ride -paidWith-> payment_card; \
         ?ride -duringHour-> hour_23",
        &mut symbols,
    )
    .expect("valid pattern");
    let hot_zone_outflow = QueryPattern::parse(
        "?ride -pickupAt-> zone_0; ?ride -dropoffAt-> ?other",
        &mut symbols,
    )
    .expect("valid pattern");

    let mut engine = TricEngine::tric_plus();
    let names = ["hot-loop", "premium-night", "zone0-outflow"];
    for q in [&hot_loop, &premium_night, &hot_zone_outflow] {
        engine.register_query(q).expect("register");
    }

    let mut counts: HashMap<usize, u64> = HashMap::new();
    for u in stream.iter() {
        for m in engine.apply_update(*u).matches {
            *counts.entry(m.query.index()).or_insert(0) += m.new_embeddings;
        }
    }

    println!("\ndetections over the whole stream:");
    for (idx, name) in names.iter().enumerate() {
        println!(
            "  {:<14} {:>6}",
            name,
            counts.get(&idx).copied().unwrap_or(0)
        );
    }
    println!(
        "\nTRIC+ state: {} trie nodes across {} tries, {} bytes, {} cache hits",
        engine.num_trie_nodes(),
        engine.num_tries(),
        engine.heap_bytes(),
        engine.cache_hits(),
    );

    // Sanity: the hot-loop query must fire (same-zone trips are common under
    // the skewed zone distribution).
    assert!(
        counts.get(&0).copied().unwrap_or(0) > 0,
        "expected hot-loop detections"
    );
}
