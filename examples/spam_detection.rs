//! Spam detection over a social-network stream (the paper's Fig. 1 use case).
//!
//! ```text
//! cargo run --release --example spam_detection
//! ```
//!
//! Two continuous queries watch a synthetic SNB-like activity stream:
//!
//! 1. a clique-flavoured pattern — two users who know each other both post
//!    into the same forum (coordinated posting), and
//! 2. an amplification pattern — a moderator of a forum likes a post that is
//!    contained in their own forum (self-promotion).
//!
//! The example registers both queries on every engine and shows that all of
//! them raise exactly the same notifications, while reporting how much time
//! each engine spent — a miniature version of the paper's evaluation.

use std::time::Instant;

use graph_stream_matching::all_engines;
use graph_stream_matching::core::prelude::*;
use graph_stream_matching::datagen::snb::{self, SnbConfig};

fn main() {
    let mut symbols = SymbolTable::new();

    // Generate a small social-network activity stream.
    let stream = snb::generate(&SnbConfig::with_edges(5_000), &mut symbols);
    println!("generated {} social-network updates", stream.len());

    // Continuous queries over that activity.
    let coordinated_posting = QueryPattern::parse(
        "?u1 -knows-> ?u2; \
         ?u1 -posted-> ?p1; ?p1 -containedIn-> ?forum; \
         ?u2 -posted-> ?p2; ?p2 -containedIn-> ?forum",
        &mut symbols,
    )
    .expect("valid pattern");
    let self_promotion = QueryPattern::parse(
        "?forum -hasModerator-> ?mod; \
         ?mod -likes-> ?post; \
         ?post -containedIn-> ?forum",
        &mut symbols,
    )
    .expect("valid pattern");

    let queries = vec![
        ("coordinated-posting", coordinated_posting),
        ("self-promotion", self_promotion),
    ];

    let mut reference: Option<Vec<(usize, Vec<QueryId>)>> = None;
    for mut engine in all_engines() {
        for (_, q) in &queries {
            engine.register_query(q).expect("register");
        }
        let start = Instant::now();
        let mut notifications: Vec<(usize, Vec<QueryId>)> = Vec::new();
        let mut total = 0u64;
        for (i, u) in stream.iter().enumerate() {
            let report = engine.apply_update(*u);
            if !report.is_empty() {
                total += report.total_embeddings();
                notifications.push((i, report.satisfied_queries()));
            }
        }
        let elapsed = start.elapsed();
        println!(
            "{:<8} {:>6} alerts, {:>8} embeddings, {:>8.1} ms total ({:.4} ms/update)",
            engine.name(),
            notifications.len(),
            total,
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3 / stream.len() as f64
        );
        match &reference {
            None => reference = Some(notifications),
            Some(expected) => assert_eq!(
                expected,
                &notifications,
                "{} diverged from the reference engine",
                engine.name()
            ),
        }
    }

    // Show a couple of concrete alerts from the reference run.
    if let Some(reference) = reference {
        println!("\nfirst alerts:");
        for (update_idx, queries_hit) in reference.iter().take(5) {
            let names: Vec<&str> = queries_hit.iter().map(|q| queries[q.index()].0).collect();
            println!("  update #{update_idx}: {}", names.join(", "));
        }
    }
}
