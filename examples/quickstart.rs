//! Quickstart: register a continuous query and stream a few graph updates.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This is the paper's running example (Fig. 3): notify the user when two
//! people who know each other check in at the same place located in Rio.

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ContinuousEngine;
use graph_stream_matching::tric::TricEngine;

fn main() {
    // Every label (vertex identity or edge label) lives in a symbol table.
    let mut symbols = SymbolTable::new();

    // The continuous query: ?p1 and ?p2 know each other and both check in at
    // a place located in Rio.
    let query = QueryPattern::parse(
        "?p1 -knows-> ?p2; \
         ?p1 -checksIn-> ?plc; \
         ?p2 -checksIn-> ?plc; \
         ?plc -isLocatedIn-> rio",
        &mut symbols,
    )
    .expect("valid pattern");

    println!(
        "query has {} edges, {} vertices",
        query.num_edges(),
        query.num_vertices()
    );
    println!("covering paths: {}", covering_paths(&query).len());

    // TRIC+ is the paper's best-performing engine.
    let mut engine = TricEngine::tric_plus();
    let qid = engine.register_query(&query).expect("register");

    // Helper to build updates tersely.
    let mut update = |label: &str, src: &str, tgt: &str| -> Update {
        Update::new(
            symbols.intern(label),
            symbols.intern(src),
            symbols.intern(tgt),
        )
    };

    // The graph evolves; nothing matches until the pattern is complete.
    let stream = vec![
        update("isLocatedIn", "copacabana", "rio"),
        update("knows", "ana", "bruno"),
        update("checksIn", "ana", "copacabana"),
        update("checksIn", "carla", "copacabana"), // carla doesn't know ana
        update("checksIn", "bruno", "copacabana"), // completes the pattern
    ];

    for (i, u) in stream.into_iter().enumerate() {
        let report = engine.apply_update(u);
        if report.is_empty() {
            println!("update #{i}: no query satisfied");
        } else {
            for m in &report.matches {
                println!(
                    "update #{i}: query {:?} satisfied with {} new embedding(s)",
                    m.query, m.new_embeddings
                );
                assert_eq!(m.query, qid);
            }
        }
    }

    println!(
        "engine processed {} updates, emitted {} notifications, using ~{} bytes",
        engine.stats().updates_processed,
        engine.stats().notifications,
        engine.heap_bytes()
    );
}
