//! Protein-interaction monitoring (the paper's BioGRID use case).
//!
//! ```text
//! cargo run --release --example protein_interactions
//! ```
//!
//! BioGRID-style streams are the stress test of the paper: a single vertex
//! type and a single edge type mean every update affects every registered
//! query. The example registers structural motif queries (interaction chains,
//! a feed-forward triangle, and a hub motif anchored at a specific protein)
//! and compares TRIC+ against the graph-database baseline on the same stream.

use std::time::Instant;

use graph_stream_matching::core::prelude::*;
use graph_stream_matching::core::ContinuousEngine;
use graph_stream_matching::datagen::biogrid::{self, BioGridConfig};
use graph_stream_matching::graphdb::GraphDbEngine;
use graph_stream_matching::tric::TricEngine;

fn main() {
    let mut symbols = SymbolTable::new();
    let stream = biogrid::generate(&BioGridConfig::with_edges(4_000), &mut symbols);
    println!("generated {} protein-interaction updates", stream.len());

    let chain3 = QueryPattern::parse("?a -interacts-> ?b; ?b -interacts-> ?c", &mut symbols)
        .expect("valid pattern");
    let feed_forward = QueryPattern::parse(
        "?a -interacts-> ?b; ?b -interacts-> ?c; ?a -interacts-> ?c",
        &mut symbols,
    )
    .expect("valid pattern");
    let hub_motif = QueryPattern::parse(
        "protein_0 -interacts-> ?x; protein_0 -interacts-> ?y",
        &mut symbols,
    )
    .expect("valid pattern");
    let queries = vec![
        ("chain-of-3", chain3),
        ("feed-forward-triangle", feed_forward),
        ("protein_0-hub", hub_motif),
    ];

    let mut summaries = Vec::new();
    for engine_box in [
        Box::new(TricEngine::tric_plus()) as Box<dyn ContinuousEngine>,
        Box::new(GraphDbEngine::new()) as Box<dyn ContinuousEngine>,
    ] {
        let mut engine = engine_box;
        for (_, q) in &queries {
            engine.register_query(q).expect("register");
        }
        let start = Instant::now();
        let mut per_query = vec![0u64; queries.len()];
        for u in stream.iter() {
            for m in engine.apply_update(*u).matches {
                per_query[m.query.index()] += m.new_embeddings;
            }
        }
        let elapsed = start.elapsed();
        println!(
            "\n{} finished in {:.1} ms ({:.4} ms/update)",
            engine.name(),
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e3 / stream.len() as f64
        );
        for ((name, _), count) in queries.iter().zip(&per_query) {
            println!("  {:<24} {:>10} new embeddings", name, count);
        }
        summaries.push(per_query);
    }

    assert_eq!(
        summaries[0], summaries[1],
        "TRIC+ and the graph database must report identical motif counts"
    );
    println!("\nboth engines report identical motif counts ✓");
}
